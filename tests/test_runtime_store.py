"""Tests for the content-addressed artifact store."""

import os
import pickle

import pytest

from repro.runtime.store import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    MISS,
    ArtifactStore,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestRoundTrip:
    def test_put_then_get(self, store):
        payload = {"rows": [1, 2, 3], "name": "compress"}
        store.put(DIGEST, payload)
        assert store.get(DIGEST) == payload

    def test_missing_entry_is_miss(self, store):
        assert store.get(DIGEST) is MISS

    def test_none_payload_distinguished_from_miss(self, store):
        store.put(DIGEST, None)
        assert store.get(DIGEST) is None

    def test_entries_are_sharded_by_digest_prefix(self, store):
        store.put(DIGEST, 1)
        assert store.path_for(DIGEST).parent.name == DIGEST[:2]

    def test_no_temp_files_left_behind(self, store):
        store.put(DIGEST, list(range(1000)))
        leftovers = [
            p for p in store.root.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestCorruptionTolerance:
    """A damaged cache must only ever cost a recompute, never a crash."""

    def test_truncated_entry_is_miss_and_dropped(self, store):
        store.put(DIGEST, {"big": "x" * 4096})
        path = store.path_for(DIGEST)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(DIGEST) is MISS
        assert not path.exists()

    def test_garbage_bytes_are_a_miss(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert store.get(DIGEST) is MISS

    def test_wrong_magic_is_a_miss(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": "someone-else",
                    "version": ENVELOPE_VERSION,
                    "digest": DIGEST,
                    "payload": 1,
                }
            )
        )
        assert store.get(DIGEST) is MISS

    def test_stale_envelope_version_is_a_miss(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": ENVELOPE_MAGIC,
                    "version": ENVELOPE_VERSION + 1,
                    "digest": DIGEST,
                    "payload": 1,
                }
            )
        )
        assert store.get(DIGEST) is MISS

    def test_entry_filed_under_wrong_digest_is_a_miss(self, store):
        store.put(DIGEST, "payload")
        misfiled = store.path_for(OTHER)
        misfiled.parent.mkdir(parents=True, exist_ok=True)
        misfiled.write_bytes(store.path_for(DIGEST).read_bytes())
        assert store.get(OTHER) is MISS

    def test_recompute_after_corruption(self, store):
        """The caller's get-miss → compute → put cycle self-heals."""
        store.put(DIGEST, "good")
        store.path_for(DIGEST).write_bytes(b"\x80")  # truncated pickle
        value = store.get(DIGEST)
        assert value is MISS
        store.put(DIGEST, "recomputed")
        assert store.get(DIGEST) == "recomputed"

    def test_bit_flip_in_payload_is_a_miss_not_a_wrong_artifact(
        self, store
    ):
        """Regression: in-place payload damage must fail the checksum.

        Under envelope v1 only the digest key was validated, so a
        flipped byte deep inside the pickled payload could silently
        unpickle to a *different* value — the one corruption worse than
        a crash.  The v2 payload checksum turns it into a clean miss.
        """
        store.put(DIGEST, "A" * 2048)
        path = store.path_for(DIGEST)
        blob = bytearray(path.read_bytes())
        position = bytes(blob).find(b"AAAAAAAA") + 4
        assert position >= 4, "payload bytes not found in envelope"
        blob[position] ^= 0x03  # 'A' -> 'B'
        path.write_bytes(bytes(blob))
        assert store.get(DIGEST) is MISS
        assert not path.exists()  # the damaged entry was dropped

    def test_v1_envelope_without_checksum_is_a_miss(self, store):
        """Entries from the pre-checksum format recompute cleanly."""
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": ENVELOPE_MAGIC,
                    "version": 1,
                    "digest": DIGEST,
                    "payload": "raw object, no checksum",
                }
            )
        )
        assert store.get(DIGEST) is MISS

    def test_checksum_over_wrong_payload_is_a_miss(self, store):
        """A forged envelope whose sha256 doesn't match the payload."""
        import hashlib

        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        payload_blob = pickle.dumps("evil twin")
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": ENVELOPE_MAGIC,
                    "version": ENVELOPE_VERSION,
                    "digest": DIGEST,
                    "sha256": hashlib.sha256(b"other bytes").hexdigest(),
                    "payload": payload_blob,
                }
            )
        )
        assert store.get(DIGEST) is MISS


class TestConcurrencySafety:
    """Race windows must degrade to misses, never lose good entries."""

    def test_corrupt_read_spares_a_concurrently_replaced_entry(
        self, store
    ):
        """Regression for the read/discard TOCTOU window.

        A reader that opened a corrupt entry used to unlink the *path*
        after the failed parse — destroying a good entry a concurrent
        writer had just renamed into place.  The discard is now guarded
        by the inode captured at open time.
        """
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"corrupt garbage")
        corrupt_inode = os.stat(path).st_ino
        # A concurrent writer replaces the entry before the reader gets
        # around to discarding what it read.
        store.put(DIGEST, "freshly recomputed")
        assert os.stat(path).st_ino != corrupt_inode
        store._discard_if_unchanged(path, corrupt_inode)
        assert store.get(DIGEST) == "freshly recomputed"

    def test_discard_if_unchanged_drops_the_file_it_read(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"corrupt garbage")
        store._discard_if_unchanged(path, os.stat(path).st_ino)
        assert not path.exists()

    def test_discard_without_inode_leaves_the_entry_alone(self, store):
        store.put(DIGEST, "value")
        store._discard_if_unchanged(store.path_for(DIGEST), None)
        assert store.get(DIGEST) == "value"

    def test_get_tolerates_entry_vanishing_after_validation(
        self, store, monkeypatch
    ):
        """An evictor unlinking between read and the LRU touch."""
        store.put(DIGEST, "value")
        real_utime = os.utime

        def vanish_then_touch(path, *args, **kwargs):
            try:
                os.unlink(path)
            except OSError:
                pass
            return real_utime(path, *args, **kwargs)

        monkeypatch.setattr(os, "utime", vanish_then_touch)
        # The payload was already read; the failed touch must not raise.
        assert store.get(DIGEST) == "value"
        assert store.get(DIGEST) is MISS  # and it really is gone

    def test_multiprocess_writers_evictor_readers(self, tmp_path):
        """Stress the real race: every read is a miss or the true value."""
        import multiprocessing

        from repro.check.faults import (
            _payload_for,
            _race_evictor,
            _race_reader,
            _race_writer,
        )

        root = str(tmp_path / "race")
        digests = [f"{i:02x}" + "f" * 62 for i in range(4)]
        entry = len(pickle.dumps(_payload_for(digests[0]))) + 256
        seconds = 0.4
        processes = [
            multiprocessing.Process(
                target=_race_writer,
                args=(root, 2 * entry, digests, seconds),
            ),
            multiprocessing.Process(
                target=_race_evictor, args=(root, digests, seconds)
            ),
            multiprocessing.Process(
                target=_race_reader, args=(root, digests, seconds)
            ),
            multiprocessing.Process(
                target=_race_reader, args=(root, digests, seconds)
            ),
        ]
        for p in processes:
            p.start()
        for p in processes:
            p.join(timeout=30.0)
        codes = [p.exitcode for p in processes]
        assert codes == [0, 0, 0, 0], (
            "3=wrong artifact observed, 4=reader raised: %r" % codes
        )


class TestLRUCap:
    def test_eviction_drops_least_recently_used(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1)  # everything over cap
        digests = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for i, digest in enumerate(digests):
            store.put(digest, "x" * 128)
            # make mtimes strictly ordered regardless of fs resolution
            os.utime(store.path_for(digest), (1000 + i, 1000 + i))
        # each put evicts everything except the entry just written
        assert store.get(digests[0]) is MISS
        assert store.get(digests[1]) is MISS
        assert store.get(digests[2]) == "x" * 128

    def test_hit_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path)  # no cap while seeding
        a, b = "aa" + "0" * 62, "bb" + "0" * 62
        store.put(a, "x" * 64)
        store.put(b, "x" * 64)
        entry = store.size_of(a)
        store.max_bytes = int(2.5 * entry)  # room for two entries
        os.utime(store.path_for(a), (1000, 1000))
        os.utime(store.path_for(b), (2000, 2000))
        assert store.get(a) == "x" * 64  # touch refreshes a's mtime
        os.utime(store.path_for(a), (3000, 3000))
        store.put("cc" + "0" * 62, "x" * 64)  # forces eviction of b
        assert store.get(a) == "x" * 64
        assert store.get(b) is MISS

    def test_no_cap_means_no_eviction(self, store):
        for i in range(5):
            store.put(f"{i:02x}" + "0" * 62, "x" * 1024)
        assert store.stats().entries == 5


class TestStatsAndClear:
    def test_stats_counts_entries_and_bytes(self, store):
        store.put(DIGEST, "abc")
        store.put(OTHER, "defg")
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0

    def test_clear_empties_the_store(self, store):
        store.put(DIGEST, "abc")
        store.put(OTHER, "defg")
        assert store.clear() == 2
        assert store.stats().entries == 0
        assert store.get(DIGEST) is MISS
