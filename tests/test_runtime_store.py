"""Tests for the content-addressed artifact store."""

import os
import pickle

import pytest

from repro.runtime.store import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    MISS,
    ArtifactStore,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestRoundTrip:
    def test_put_then_get(self, store):
        payload = {"rows": [1, 2, 3], "name": "compress"}
        store.put(DIGEST, payload)
        assert store.get(DIGEST) == payload

    def test_missing_entry_is_miss(self, store):
        assert store.get(DIGEST) is MISS

    def test_none_payload_distinguished_from_miss(self, store):
        store.put(DIGEST, None)
        assert store.get(DIGEST) is None

    def test_entries_are_sharded_by_digest_prefix(self, store):
        store.put(DIGEST, 1)
        assert store.path_for(DIGEST).parent.name == DIGEST[:2]

    def test_no_temp_files_left_behind(self, store):
        store.put(DIGEST, list(range(1000)))
        leftovers = [
            p for p in store.root.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestCorruptionTolerance:
    """A damaged cache must only ever cost a recompute, never a crash."""

    def test_truncated_entry_is_miss_and_dropped(self, store):
        store.put(DIGEST, {"big": "x" * 4096})
        path = store.path_for(DIGEST)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(DIGEST) is MISS
        assert not path.exists()

    def test_garbage_bytes_are_a_miss(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert store.get(DIGEST) is MISS

    def test_wrong_magic_is_a_miss(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": "someone-else",
                    "version": ENVELOPE_VERSION,
                    "digest": DIGEST,
                    "payload": 1,
                }
            )
        )
        assert store.get(DIGEST) is MISS

    def test_stale_envelope_version_is_a_miss(self, store):
        path = store.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": ENVELOPE_MAGIC,
                    "version": ENVELOPE_VERSION + 1,
                    "digest": DIGEST,
                    "payload": 1,
                }
            )
        )
        assert store.get(DIGEST) is MISS

    def test_entry_filed_under_wrong_digest_is_a_miss(self, store):
        store.put(DIGEST, "payload")
        misfiled = store.path_for(OTHER)
        misfiled.parent.mkdir(parents=True, exist_ok=True)
        misfiled.write_bytes(store.path_for(DIGEST).read_bytes())
        assert store.get(OTHER) is MISS

    def test_recompute_after_corruption(self, store):
        """The caller's get-miss → compute → put cycle self-heals."""
        store.put(DIGEST, "good")
        store.path_for(DIGEST).write_bytes(b"\x80")  # truncated pickle
        value = store.get(DIGEST)
        assert value is MISS
        store.put(DIGEST, "recomputed")
        assert store.get(DIGEST) == "recomputed"


class TestLRUCap:
    def test_eviction_drops_least_recently_used(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1)  # everything over cap
        digests = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for i, digest in enumerate(digests):
            store.put(digest, "x" * 128)
            # make mtimes strictly ordered regardless of fs resolution
            os.utime(store.path_for(digest), (1000 + i, 1000 + i))
        # each put evicts everything except the entry just written
        assert store.get(digests[0]) is MISS
        assert store.get(digests[1]) is MISS
        assert store.get(digests[2]) == "x" * 128

    def test_hit_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path)  # no cap while seeding
        a, b = "aa" + "0" * 62, "bb" + "0" * 62
        store.put(a, "x" * 64)
        store.put(b, "x" * 64)
        entry = store.size_of(a)
        store.max_bytes = int(2.5 * entry)  # room for two entries
        os.utime(store.path_for(a), (1000, 1000))
        os.utime(store.path_for(b), (2000, 2000))
        assert store.get(a) == "x" * 64  # touch refreshes a's mtime
        os.utime(store.path_for(a), (3000, 3000))
        store.put("cc" + "0" * 62, "x" * 64)  # forces eviction of b
        assert store.get(a) == "x" * 64
        assert store.get(b) is MISS

    def test_no_cap_means_no_eviction(self, store):
        for i in range(5):
            store.put(f"{i:02x}" + "0" * 62, "x" * 1024)
        assert store.stats().entries == 5


class TestStatsAndClear:
    def test_stats_counts_entries_and_bytes(self, store):
        store.put(DIGEST, "abc")
        store.put(OTHER, "defg")
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0

    def test_clear_empties_the_store(self, store):
        store.put(DIGEST, "abc")
        store.put(OTHER, "defg")
        assert store.clear() == 2
        assert store.stats().entries == 0
        assert store.get(DIGEST) is MISS
