"""The predictive static analyses: loops, frequencies, cache bounds.

Three layers of evidence, mirroring the module structure:

* **loops** — back-edge/natural-loop/depth detection against dominator
  facts on hand-built CFGs (self loops, nesting, the classic
  irreducible diamond) and Hypothesis-random digraphs;
* **freq** — branch probabilities form distributions, the fixpoint
  respects the flow equations, and static heat ranks real compiled
  loop bodies above their preheaders;
* **cachebound** — the must/may domain is sound against a concrete
  LRU oracle on random access strings, and the cycle bounds bracket
  the real simulator on real studies (spot here; exhaustively in the
  ``static`` check scope).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import build_call_module, build_counting_module
from repro.analysis.cachebound import (
    _join_may,
    _join_must,
    _touch_may,
    _touch_must,
    classify_fetch,
    cycle_bounds,
)
from repro.analysis.dataflow import dominators, reachable
from repro.analysis.freq import (
    BACK_EDGE_MASS,
    FREQUENCY_CLAMP,
    HEAT_QUANTUM,
    block_frequencies,
    branch_probabilities,
    static_heat_profile,
)
from repro.analysis.imagecfg import interprocedural_cfg
from repro.analysis.loops import (
    back_edges,
    irreducible_edges,
    loop_depths,
    loops,
    natural_loop,
)
from repro.compiler import compile_module
from repro.errors import ConfigurationError
from repro.fetch.config import CacheGeometry, FetchConfig


# ------------------------------------------------------------ strategies
@st.composite
def digraphs(draw, max_nodes=7):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    return {
        node: draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                max_size=3,
                unique=True,
            )
        )
        for node in range(n)
    }


# ----------------------------------------------------------------- loops
class TestLoops:
    def test_simple_loop(self):
        cfg = {0: [1], 1: [2], 2: [1, 3], 3: []}
        assert back_edges(cfg, 0) == [(2, 1)]
        assert natural_loop(cfg, 2, 1) == frozenset({1, 2})
        found = loops(cfg, 0)
        assert len(found) == 1
        assert found[0].header == 1
        assert found[0].body == frozenset({1, 2})
        assert loop_depths(cfg, 0) == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_self_loop(self):
        cfg = {0: [1], 1: [1, 2], 2: []}
        assert back_edges(cfg, 0) == [(1, 1)]
        assert natural_loop(cfg, 1, 1) == frozenset({1})
        assert loop_depths(cfg, 0)[1] == 1
        assert irreducible_edges(cfg, 0) == []

    def test_nested_loops_share_depth(self):
        # 1 is the outer header, 2 the inner; 3 only in the outer body.
        cfg = {0: [1], 1: [2], 2: [2, 3], 3: [1, 4], 4: []}
        headers = {loop.header for loop in loops(cfg, 0)}
        assert headers == {1, 2}
        depths = loop_depths(cfg, 0)
        assert depths[2] == 2
        assert depths[1] == depths[3] == 1
        assert depths[0] == depths[4] == 0

    def test_shared_header_bodies_merge(self):
        # Two back edges to one header: one natural loop, merged body.
        cfg = {0: [1], 1: [2, 3], 2: [1], 3: [1, 4], 4: []}
        found = loops(cfg, 0)
        assert len(found) == 1
        assert found[0].body == frozenset({1, 2, 3})

    def test_irreducible_diamond(self):
        # Two entries into the 1<->2 cycle: neither dominates the
        # other, so neither retreating edge is a dominator back edge.
        cfg = {0: [1, 2], 1: [2], 2: [1, 3], 3: []}
        assert back_edges(cfg, 0) == []
        assert loops(cfg, 0) == []
        assert irreducible_edges(cfg, 0) != []

    @settings(max_examples=80, deadline=None)
    @given(digraphs())
    def test_back_edge_heads_dominate_tails(self, cfg):
        doms = dominators(cfg, 0)
        edges = {
            (u, v) for u in reachable(cfg, 0) for v in cfg[u]
        }
        backs = back_edges(cfg, 0)
        assert set(backs) <= edges
        for tail, header in backs:
            assert header in doms[tail]

    @settings(max_examples=80, deadline=None)
    @given(digraphs())
    def test_loop_bodies_are_wellformed(self, cfg):
        doms = dominators(cfg, 0)
        for loop in loops(cfg, 0):
            assert loop.header in loop.body
            for member in loop.body:
                # Reachable, and dominated by the loop header.
                assert member in doms
                assert loop.header in doms[member]

    @settings(max_examples=80, deadline=None)
    @given(digraphs())
    def test_irreducible_edges_disjoint_from_back_edges(self, cfg):
        backs = set(back_edges(cfg, 0))
        irreducible = set(irreducible_edges(cfg, 0))
        assert not (backs & irreducible)
        # Both kinds of retreating edge target a node on the DFS stack,
        # i.e. every irreducible edge closes some cycle.
        edges = {(u, v) for u in reachable(cfg, 0) for v in cfg[u]}
        assert irreducible <= edges

    @settings(max_examples=80, deadline=None)
    @given(digraphs())
    def test_depths_count_containing_bodies(self, cfg):
        depths = loop_depths(cfg, 0)
        bodies = [loop.body for loop in loops(cfg, 0)]
        for node, depth in depths.items():
            assert depth == sum(1 for body in bodies if node in body)


# ------------------------------------------------------------- frequency
class TestFrequencies:
    def test_probabilities_form_distributions(self):
        cfg = {0: [1, 2], 1: [3], 2: [3], 3: [0, 4], 4: []}
        probs = branch_probabilities(cfg, 0)
        outgoing = {}
        for (u, _), p in probs.items():
            assert 0.0 < p <= 1.0
            outgoing[u] = outgoing.get(u, 0.0) + p
        for u, total in outgoing.items():
            assert math.isclose(total, 1.0)

    def test_back_edges_get_the_mass(self):
        cfg = {0: [1], 1: [1, 2], 2: []}
        probs = branch_probabilities(cfg, 0)
        assert math.isclose(probs[(1, 1)], BACK_EDGE_MASS)
        assert math.isclose(probs[(1, 2)], 1.0 - BACK_EDGE_MASS)

    def test_loop_frequency_hits_geometric_fixpoint(self):
        cfg = {0: [1], 1: [1, 2], 2: []}
        freq = block_frequencies(cfg, 0)
        assert math.isclose(freq[0], 1.0)
        # f(1) = 1 + BACK_EDGE_MASS * f(1)  =>  1 / (1 - mass);
        # the iteration cap leaves a ~1e-5 geometric residual.
        assert math.isclose(
            freq[1], 1.0 / (1.0 - BACK_EDGE_MASS), rel_tol=1e-4
        )

    def test_nested_loop_with_early_exits_respects_flow(self):
        # Outer loop 1..4, inner loop 2..3 with an early exit 3->5 that
        # bypasses the outer latch, plus an inner latch back to 2.
        cfg = {
            0: [1],
            1: [2],
            2: [3],
            3: [2, 4, 5],
            4: [1, 5],
            5: [],
        }
        probs = branch_probabilities(cfg, 0)
        freq = block_frequencies(cfg, 0, probs)
        # Inner body at least as hot as the outer, outer hotter than
        # straight-line code.
        assert freq[2] >= freq[1] > freq[0]
        assert freq[3] >= freq[4]
        # The fixpoint satisfies every flow equation (up to the
        # capped-iteration residual).
        for node in cfg:
            inflow = (1.0 if node == 0 else 0.0) + sum(
                freq[u] * probs[(u, node)]
                for u in cfg
                if (u, node) in probs
            )
            assert math.isclose(freq[node], inflow, rel_tol=1e-4)

    @settings(max_examples=60, deadline=None)
    @given(digraphs())
    def test_frequencies_finite_and_covering(self, cfg):
        freq = block_frequencies(cfg, 0)
        keep = reachable(cfg, 0)
        assert set(freq) == set(keep)
        for value in freq.values():
            assert 0.0 <= value <= FREQUENCY_CLAMP

    def test_static_heat_ranks_a_real_loop(self):
        module, _ = build_counting_module()
        image = compile_module(module).image
        profile = static_heat_profile(image)
        assert len(profile) == len(image)
        entry = image.entry_block
        assert profile[entry] >= HEAT_QUANTUM
        # The loop body runs hotter than the entry straight-line code.
        assert max(profile) > profile[entry]

    def test_static_heat_crosses_calls(self):
        module, _ = build_call_module()
        image = compile_module(module).image
        profile = static_heat_profile(image)
        cfg = interprocedural_cfg(image)
        live = reachable(cfg, image.entry_block)
        # Interprocedural edges make the callee (and the code *after*
        # the call sites) reachable: every live block gets heat.
        assert len(live) > 1
        for block_id in range(len(image)):
            if block_id in live:
                assert profile[block_id] > 0
            else:
                assert profile[block_id] == 0


# ---------------------------------------------------------- must/may LRU
def _concrete_lru(accesses, ways):
    """Oracle: one concrete LRU set, cold start, ``{line: age}``."""
    state = {}
    for line in accesses:
        old = state.get(line)
        for other, age in list(state.items()):
            if old is None or age < old:
                state[other] = age + 1
        state = {l: a for l, a in state.items() if a < ways}
        state[line] = 0
    return state


class TestMustMayDomain:
    WAYS = 2

    def _abstract(self, accesses, start_must=None, start_may=None):
        must = dict(start_must or {})
        may = dict(start_may or {})
        for line in accesses:
            must = _touch_must(must, ((0, line),), self.WAYS)
            may = _touch_may(may, ((0, line),), self.WAYS)
        return must.get(0, {}), may.get(0, {})

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=4), max_size=12
        )
    )
    def test_domain_sound_against_concrete_lru(self, accesses):
        concrete = _concrete_lru(accesses, self.WAYS)
        must, may = self._abstract(accesses)
        # From a cold start the abstraction is exact-or-weaker:
        # must-hits really resident, everything resident in may.
        for line, age in must.items():
            assert line in concrete
            assert concrete[line] <= age
        for line, age in concrete.items():
            assert line in may
            assert may[line] <= age

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=4), max_size=8),
        st.lists(st.integers(min_value=0, max_value=4), max_size=8),
        st.lists(st.integers(min_value=0, max_value=4), max_size=6),
    )
    def test_join_is_sound_for_both_paths(self, left, right, tail):
        """After joining two paths, must ⊆ each path's concrete cache
        and each path's concrete cache ⊆ may — even after more
        accesses run on the joined state."""
        lm, lmay = self._abstract(left)
        rm, rmay = self._abstract(right)
        must = _join_must({0: lm} if lm else {}, {0: rm} if rm else {})
        may = _join_may(
            {0: lmay} if lmay else {}, {0: rmay} if rmay else {}
        )
        must, may = self._abstract(tail, must, may)
        for path in (left, right):
            concrete = _concrete_lru(path + tail, self.WAYS)
            for line, age in must.items():
                assert line in concrete
                assert concrete[line] <= age
            for line, age in concrete.items():
                assert line in may
                assert may[line] <= age


# ---------------------------------------------------------- cycle bounds
class TestCycleBounds:
    SCHEMES = ("base", "tailored", "compressed", "hybrid", "hybrid:static")

    @pytest.fixture(scope="class")
    def study(self, compress_study):
        return compress_study

    def _image_key(self, scheme):
        from repro.runtime.tasks import fetch_image_key

        return fetch_image_key(scheme)

    def test_classification_is_consistent(self, study):
        for scheme in self.SCHEMES:
            compressed = study.compressed(self._image_key(scheme))
            cls = classify_fetch(
                compressed, FetchConfig.for_scheme(scheme)
            )
            for part in (cls.cache, cls.atb):
                assert not (part.always_hit & part.always_miss)
                assert (part.always_hit | part.always_miss) <= (
                    part.analyzed
                )
                assert part.unclassified == (
                    part.analyzed - part.always_hit - part.always_miss
                )

    def test_bounds_bracket_the_simulator(self, study):
        from repro.compression.adaptive import heat_profile

        counts = heat_profile(
            study.run.block_trace, len(study.compiled.image)
        )
        for scheme in self.SCHEMES:
            compressed = study.compressed(self._image_key(scheme))
            config = FetchConfig.for_scheme(scheme)
            metrics = study.fetch_metrics(scheme)
            report = cycle_bounds(compressed, counts, config)
            assert report.lower <= metrics.cycles <= report.upper
            assert report.bracket(metrics.cycles)
            payload = report.to_json()
            assert payload["lower_cycles"] == report.lower
            assert payload["upper_cycles"] == report.upper

    def test_bounds_bracket_on_a_tiny_geometry(self, study):
        """A cache small enough to actually miss keeps the bracket."""
        from repro.compression.adaptive import heat_profile
        from repro.fetch.engine import simulate_fetch

        counts = heat_profile(
            study.run.block_trace, len(study.compiled.image)
        )
        compressed = study.compressed("full")
        config = FetchConfig(
            scheme="compressed",
            cache=CacheGeometry(
                name="tiny", capacity_bytes=512, ways=2, line_bytes=16
            ),
            atb_entries=64,
            atb_ways=2,
        )
        simulated = simulate_fetch(
            compressed, study.run.block_trace, config
        )
        report = cycle_bounds(compressed, counts, config)
        assert report.lower <= simulated.cycles <= report.upper

    def test_counts_length_is_validated(self, study):
        compressed = study.compressed("full")
        with pytest.raises(ConfigurationError):
            cycle_bounds(
                compressed, [1], FetchConfig.for_scheme("compressed")
            )
