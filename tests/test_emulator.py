"""Tests for the emulator: op semantics, predication, VLIW ordering."""

import pytest

from repro.compiler import ModuleBuilder, compile_module
from repro.emulator import Machine, run_image
from repro.emulator.machine import _execute_mop
from repro.errors import EmulationError
from repro.isa import MultiOp, Opcode, Operation
from repro.isa.operation import (
    BHWX_BYTE,
    BHWX_DOUBLE,
    BHWX_HALF,
    BHWX_WORD,
)
from repro.isa.registers import fpr, gpr, pred
from collections import Counter


def _run_value(build_body, expected, name="sem"):
    """Build main with ``build_body``, run, compare the result word."""
    mb = ModuleBuilder(name)
    out = mb.global_array("result", words=1)
    b = mb.function("main", num_args=0)
    value = build_body(b)
    addr = b.ireg()
    b.la(addr, "result")
    b.store(addr, value)
    b.halt()
    b.done()
    module = mb.build()
    prog = compile_module(module, opt=False)  # test raw semantics
    res = run_image(prog.image, module.globals)
    assert res.machine.load_word(out) == expected


class TestIntegerSemantics:
    @pytest.mark.parametrize(
        "emit,expected",
        [
            (lambda b, x, y, d: b.add(d, x, y), 7 + 5),
            (lambda b, x, y, d: b.sub(d, x, y), 2),
            (lambda b, x, y, d: b.mpy(d, x, y), 35),
            (lambda b, x, y, d: b.div(d, x, y), 1),
            (lambda b, x, y, d: b.mod(d, x, y), 2),
            (lambda b, x, y, d: b.and_(d, x, y), 7 & 5),
            (lambda b, x, y, d: b.or_(d, x, y), 7 | 5),
            (lambda b, x, y, d: b.xor(d, x, y), 7 ^ 5),
            (lambda b, x, y, d: b.shl(d, x, y), 7 << 5),
            (lambda b, x, y, d: b.shr(d, x, y), 0),
            (lambda b, x, y, d: b.min_(d, x, y), 5),
            (lambda b, x, y, d: b.max_(d, x, y), 7),
        ],
    )
    def test_binary_ops(self, emit, expected):
        def body(b):
            x = b.iconst(7)
            y = b.iconst(5)
            d = b.ireg()
            emit(b, x, y, d)
            return d

        _run_value(body, expected)

    def test_wrapping_multiply(self):
        def body(b):
            x = b.iconst(0x10000)
            d = b.ireg()
            b.mpy(d, x, x)  # 2^32 wraps to 0
            return d

        _run_value(body, 0)

    def test_sra_negative(self):
        def body(b):
            x = b.iconst(-8)
            s = b.iconst(1)
            d = b.ireg()
            b.sra(d, x, s)
            return d

        _run_value(body, -4)

    def test_division_by_zero_raises(self):
        mb = ModuleBuilder("dz")
        mb.global_array("result", words=1)
        b = mb.function("main", num_args=0)
        z = b.iconst(0)
        o = b.iconst(1)
        d = b.ireg()
        b.div(d, o, z)
        b.halt()
        b.done()
        module = mb.build()
        prog = compile_module(module, opt=False)
        with pytest.raises(EmulationError):
            run_image(prog.image, module.globals)

    def test_abs_and_not(self):
        def body(b):
            x = b.iconst(-9)
            a = b.ireg()
            b.abs_(a, x)
            n = b.ireg()
            b.not_(n, a)  # ~9 = -10
            d = b.ireg()
            b.sub(d, a, n)  # 9 - (-10) = 19
            return d

        _run_value(body, 19)


class TestPredication:
    def test_false_predicate_nullifies(self):
        def body(b):
            d = b.ireg()
            b.li(d, 1)
            zero = b.iconst(0)
            p = b.preg()
            b.cmpi_ne(p, zero, 0)  # false
            two = b.iconst(2)
            b.mov(d, two, predicate=p)  # must not execute
            return d

        _run_value(body, 1)

    def test_true_predicate_executes(self):
        def body(b):
            d = b.ireg()
            b.li(d, 1)
            zero = b.iconst(0)
            p = b.preg()
            b.cmpi_eq(p, zero, 0)  # true
            two = b.iconst(2)
            b.mov(d, two, predicate=p)
            return d

        _run_value(body, 2)


class TestVLIWSemantics:
    def test_reads_before_writes_within_mop(self):
        """A swap packed into one MultiOp must read old values."""
        m = Machine()
        m.gpr[1], m.gpr[2] = 11, 22
        mop = MultiOp.of([
            Operation(Opcode.MOV, dest=gpr(1), src1=gpr(2)),
            Operation(Opcode.MOV, dest=gpr(2), src1=gpr(1)),
        ])
        _execute_mop(m, mop.ops, Counter())
        assert (m.gpr[1], m.gpr[2]) == (22, 11)

    def test_two_control_transfers_rejected(self):
        m = Machine()
        mop = (
            Operation(Opcode.BR, target_block=1, tail=False),
            Operation(Opcode.BR, target_block=2, tail=True),
        )
        with pytest.raises(EmulationError):
            _execute_mop(m, mop, Counter())

    def test_store_applied_after_reads(self):
        m = Machine()
        m.gpr[1] = 256  # address
        m.gpr[2] = 5
        m.store(256, 99, BHWX_WORD)
        mop = MultiOp.of([
            Operation(Opcode.LD, dest=gpr(3), src1=gpr(1)),
            Operation(Opcode.ST, src1=gpr(1), src2=gpr(2)),
        ])
        _execute_mop(m, mop.ops, Counter())
        assert m.gpr[3] == 99  # load saw the pre-store value
        assert m.load_word(256) == 5


class TestMemory:
    def test_word_round_trip(self):
        m = Machine()
        m.store(128, -123456, BHWX_WORD)
        assert m.load(128, BHWX_WORD, False) == -123456

    def test_byte_and_half(self):
        m = Machine()
        m.store(64, 0x1FF, BHWX_BYTE)
        assert m.load(64, BHWX_BYTE, False) == 0xFF
        m.store(66, 0xABCD, BHWX_HALF)
        assert m.load(66, BHWX_HALF, False) == 0xABCD

    def test_double_round_trip(self):
        m = Machine()
        m.store(256, 3.5, BHWX_DOUBLE)
        assert m.load_double(256) == 3.5

    def test_misaligned_access_rejected(self):
        m = Machine()
        with pytest.raises(EmulationError):
            m.load(2, BHWX_WORD, False)
        with pytest.raises(EmulationError):
            m.store(4, 1.0, BHWX_DOUBLE)

    def test_out_of_range_rejected(self):
        m = Machine()
        with pytest.raises(EmulationError):
            m.load(len(m.memory), BHWX_WORD, False)
        with pytest.raises(EmulationError):
            m.load(-4, BHWX_WORD, False)


class TestControl:
    def test_trace_records_blocks_in_order(self, tiny_run):
        prog, result = tiny_run
        trace = list(result.block_trace)
        assert trace[0] == prog.image.entry_block
        assert all(0 <= b < len(prog.image) for b in trace)
        assert len(trace) >= 25  # at least one visit per loop iteration

    def test_runaway_guard(self, tiny_program):
        prog, _, _ = tiny_program
        with pytest.raises(EmulationError):
            run_image(prog.image, prog.module.globals, max_mops=10)

    def test_ret_with_empty_stack_rejected(self):
        mb = ModuleBuilder("badret")
        mb.global_array("result", words=1)
        b = mb.function("main", num_args=0)
        b.ret()
        b.done()
        module = mb.build()
        prog = compile_module(module, opt=False)
        with pytest.raises(EmulationError):
            run_image(prog.image, module.globals)

    def test_opcode_histogram_collected(self, tiny_run):
        _, result = tiny_run
        assert result.opcode_counts[Opcode.HALT] == 1
        assert result.opcode_counts[Opcode.MPY] >= 25

    def test_ideal_ipc_bounds(self, tiny_run):
        _, result = tiny_run
        assert 1.0 <= result.ideal_ipc <= 6.0


class TestFloat:
    def test_fp_pipeline(self):
        def body(b):
            three = b.iconst(3)
            x = b.freg()
            b.i2f(x, three)
            y = b.freg()
            b.fmpy(y, x, x)
            half_num = b.iconst(1)
            hn = b.freg()
            b.i2f(hn, half_num)
            z = b.freg()
            b.fadd(z, y, hn)  # 10.0
            d = b.ireg()
            b.f2i(d, z)
            return d

        _run_value(body, 10)

    def test_fdiv_by_zero_rejected(self):
        mb = ModuleBuilder("fdz")
        mb.global_array("result", words=1)
        b = mb.function("main", num_args=0)
        z = b.iconst(0)
        fz = b.freg()
        b.i2f(fz, z)
        o = b.iconst(1)
        fo = b.freg()
        b.i2f(fo, o)
        d = b.freg()
        b.fdiv(d, fo, fz)
        b.halt()
        b.done()
        module = mb.build()
        prog = compile_module(module, opt=False)
        with pytest.raises(EmulationError):
            run_image(prog.image, module.globals)
