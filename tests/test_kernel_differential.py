"""Differential tests: kernel paths are bit-identical to the references.

This is the correctness contract behind ``REPRO_KERNEL``: the flattened
fetch kernel, the bytearray bit writer and the canonical Huffman decoder
are *optimizations* of the retained reference implementations, and every
observable output — ``FetchMetrics`` fields, encoded bytes, decoded
symbols — must match exactly.  ``repro bench`` re-checks the same
identities before timing anything; CI runs this module as its
divergence gate.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.compression.huffman import HuffmanCode
from repro.compression.schemes import FullOpHuffmanScheme
from repro.fetch.config import FetchConfig, PenaltyTable
from repro.fetch.engine import simulate_fetch, simulate_fetch_reference
from repro.fetch.kernel import kernel_supported, simulate_fetch_kernel
from repro.utils.bitstream import BitWriter, ReferenceBitWriter, new_writer
from repro.utils.kernelmode import kernel_enabled

#: fetch scheme -> compression-scheme key of the image it runs on.
SCHEME_IMAGE = {"base": "base", "tailored": "tailored",
                "compressed": "full"}


@pytest.mark.parametrize("scaled", [True, False])
@pytest.mark.parametrize("scheme", sorted(SCHEME_IMAGE))
def test_fetch_kernel_matches_reference(compress_study, scheme, scaled):
    compressed = compress_study.compressed(SCHEME_IMAGE[scheme])
    trace = compress_study.run.block_trace
    config = FetchConfig.for_scheme(scheme, scaled=scaled)
    assert kernel_supported(config)
    reference = simulate_fetch_reference(compressed, trace, config)
    kernel = simulate_fetch_kernel(compressed, trace, config)
    assert kernel == reference


def test_fetch_kernel_matches_reference_gshare(compress_study):
    compressed = compress_study.compressed("full")
    trace = compress_study.run.block_trace
    config = FetchConfig.for_scheme(
        "compressed", scaled=True, predictor="gshare"
    )
    assert kernel_supported(config)
    assert simulate_fetch_kernel(compressed, trace, config) == (
        simulate_fetch_reference(compressed, trace, config)
    )


def test_fetch_kernel_matches_reference_with_l0_hits(compress_study):
    """The default 32-op L0 never hits at this scale; widen it so the
    kernel's buffer-hit path is differentially covered too."""
    compressed = compress_study.compressed("full")
    trace = compress_study.run.block_trace
    config = FetchConfig.for_scheme(
        "compressed", scaled=True, l0_capacity_ops=128
    )
    reference = simulate_fetch_reference(compressed, trace, config)
    assert reference.buffer_hits > 0
    assert simulate_fetch_kernel(compressed, trace, config) == reference


def test_fetch_kernel_empty_trace(compress_study):
    compressed = compress_study.compressed("base")
    config = FetchConfig.for_scheme("base", scaled=True)
    assert simulate_fetch_kernel(compressed, [], config) == (
        simulate_fetch_reference(compressed, [], config)
    )


def test_env_flag_selects_reference_paths(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert kernel_enabled()
    assert type(new_writer()) is BitWriter
    monkeypatch.setenv("REPRO_KERNEL", "ref")
    assert not kernel_enabled()
    assert type(new_writer()) is ReferenceBitWriter


def test_dispatcher_falls_back_on_unsupported_config(compress_study):
    class SubclassedTable(PenaltyTable):
        """The kernel pre-resolves Table 1; a subclass could override
        ``initiation_cycles`` per call, so it must force the reference."""

    config = dataclasses.replace(
        FetchConfig.for_scheme("base", scaled=True),
        penalties=SubclassedTable(),
    )
    assert not kernel_supported(config)
    compressed = compress_study.compressed("base")
    trace = compress_study.run.block_trace
    assert simulate_fetch(compressed, trace, config) == (
        simulate_fetch_reference(compressed, trace, config)
    )


class RecordingPenaltyTable(PenaltyTable):
    """Table 1 plus a log of ``(buffer_hit, n)`` per initiation charge."""

    def __init__(self) -> None:
        self.calls = []

    def initiation_cycles(
        self, scheme, *, pred_correct, cache_hit, buffer_hit, n
    ):
        self.calls.append((buffer_hit, n))
        return super().initiation_cycles(
            scheme,
            pred_correct=pred_correct,
            cache_hit=cache_hit,
            buffer_hit=buffer_hit,
            n=n,
        )


def test_buffer_hit_always_charges_one_line(compress_study):
    """An L0 hit must charge exactly one line — never a ``total_lines``
    carried over from an earlier iteration's L1 probe."""
    table = RecordingPenaltyTable()
    # A 128-op L0 actually gets hits on this trace (the paper's 32-op
    # buffer is smaller than this study's hot loop bodies).
    config = dataclasses.replace(
        FetchConfig.for_scheme(
            "compressed", scaled=True, l0_capacity_ops=128
        ),
        penalties=table,
    )
    compressed = compress_study.compressed("full")
    simulate_fetch_reference(
        compressed, compress_study.run.block_trace, config
    )
    buffer_hit_lines = {n for hit, n in table.calls if hit}
    assert buffer_hit_lines == {1}
    # The guard is only meaningful if the same run also saw multi-line
    # charges that a stale binding could have leaked from.
    assert any(n > 1 for hit, n in table.calls if not hit)


def test_scheme_encoding_identical_across_writer_paths(
    tiny_program, monkeypatch
):
    """End to end: a full compression pass emits byte-identical images
    whether the fast or the reference writer does the packing."""
    prog, _, _ = tiny_program

    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    fast = FullOpHuffmanScheme().compress(prog.image)
    monkeypatch.setenv("REPRO_KERNEL", "ref")
    reference = FullOpHuffmanScheme().compress(prog.image)

    assert fast.block_payloads == reference.block_payloads
    assert fast.block_bit_lengths == reference.block_bit_lengths
    assert fast.total_code_bytes == reference.total_code_bytes


def test_make_decoder_memoized_per_kernel_mode(monkeypatch):
    code = HuffmanCode.from_frequencies({0: 5, 1: 3, 2: 1})
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    kernel_decoder = code.make_decoder()
    assert kernel_decoder is code.make_decoder()
    assert kernel_decoder._use_kernel
    monkeypatch.setenv("REPRO_KERNEL", "ref")
    reference_decoder = code.make_decoder()
    assert reference_decoder is not kernel_decoder
    assert not reference_decoder._use_kernel
    assert reference_decoder is code.make_decoder()
