"""Property and unit tests for the columnar multi-config sweep engine.

The contract under test: every element of
``simulate_fetch_sweep(compressed, trace, configs)`` is bit-identical
to a sequential ``simulate_fetch(compressed, trace, config)`` call —
including configurations the factored engine cannot model (a subclassed
penalty table), which must fall back per-config without poisoning the
rest of the batch.  Hypothesis drives randomized grids over geometry,
scheme, predictor, ATB shape, L0 capacity and bus width; the unit tests
cover the degenerate shapes and the store-backed ``run_sweep`` wrapper.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sweep import expand_grid, run_sweep
from repro.errors import ConfigurationError
from repro.fetch.config import CacheGeometry, FetchConfig, PenaltyTable
from repro.fetch.engine import simulate_fetch
from repro.fetch.sweep import (
    config_from_json,
    config_to_json,
    simulate_fetch_sweep,
    simulate_fetch_sweep_multi,
    sweep_supported,
)

#: fetch scheme -> compression-scheme key of the image it runs on.
SCHEME_IMAGE = {"base": "base", "tailored": "tailored",
                "compressed": "full"}

#: Valid geometries (power-of-two set counts) spanning the axes.
GEOMETRIES = [
    (512, 2, 16), (640, 2, 40), (1280, 2, 40),
    (1024, 2, 32), (2048, 4, 32), (4096, 4, 64),
]


class TracingPenaltyTable(PenaltyTable):
    """A subclass with stock behavior — unsupported *by type*, so the
    engine must route configs carrying it through simulate_fetch."""


def _geometry(point):
    capacity, ways, line = point
    return CacheGeometry(
        name=f"t{capacity}x{ways}x{line}",
        capacity_bytes=capacity,
        ways=ways,
        line_bytes=line,
    )


@st.composite
def fetch_configs(draw, schemes=tuple(SCHEME_IMAGE)):
    scheme = draw(st.sampled_from(schemes))
    atb_entries, atb_ways = draw(
        st.sampled_from([(32, 4), (64, 4), (128, 4), (256, 8)])
    )
    return FetchConfig(
        scheme=scheme,
        cache=_geometry(draw(st.sampled_from(GEOMETRIES))),
        atb_entries=atb_entries,
        atb_ways=atb_ways,
        atb_miss_penalty=draw(st.integers(min_value=0, max_value=4)),
        l0_capacity_ops=draw(st.sampled_from([4, 8, 32, 128])),
        bus_bytes=draw(st.sampled_from([4, 8, 16])),
        predictor=draw(st.sampled_from(["block", "gshare"])),
        gshare_history_bits=draw(st.integers(min_value=2, max_value=14)),
    )


@pytest.fixture(scope="module")
def sweep_images(compress_study):
    return {
        scheme: compress_study.compressed(key)
        for scheme, key in SCHEME_IMAGE.items()
    }


@pytest.fixture(scope="module")
def nblocks(sweep_images):
    return len(sweep_images["compressed"].image)


# ------------------------------------------------------------ properties
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_sweep_matches_sequential_on_random_grids(
    data, sweep_images, nblocks
):
    trace = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=nblocks - 1),
            min_size=0,
            max_size=300,
        )
    )
    grid = data.draw(
        st.lists(fetch_configs(), min_size=1, max_size=6)
    )
    batch = simulate_fetch_sweep_multi(sweep_images, trace, grid)
    assert len(batch) == len(grid)
    for config, metrics in zip(grid, batch):
        expected = simulate_fetch(
            sweep_images[config.scheme], trace, config
        )
        assert metrics == expected


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_unsupported_configs_fall_back_without_poisoning(
    data, sweep_images, nblocks
):
    """Mix supported points with subclassed-penalty points: the batch
    must answer both exactly, the latter via per-config fallback."""
    trace = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=nblocks - 1),
            min_size=1,
            max_size=200,
        )
    )
    grid = data.draw(
        st.lists(fetch_configs(), min_size=2, max_size=5)
    )
    odd_table = TracingPenaltyTable()
    unsupported_at = data.draw(
        st.integers(min_value=0, max_value=len(grid) - 1)
    )
    grid = [
        config
        if index != unsupported_at
        else FetchConfig(
            scheme=config.scheme,
            cache=config.cache,
            atb_entries=config.atb_entries,
            atb_ways=config.atb_ways,
            atb_miss_penalty=config.atb_miss_penalty,
            l0_capacity_ops=config.l0_capacity_ops,
            bus_bytes=config.bus_bytes,
            predictor=config.predictor,
            gshare_history_bits=config.gshare_history_bits,
            penalties=odd_table,
        )
        for index, config in enumerate(grid)
    ]
    assert not sweep_supported(grid[unsupported_at])
    batch = simulate_fetch_sweep_multi(sweep_images, trace, grid)
    for config, metrics in zip(grid, batch):
        assert metrics == simulate_fetch(
            sweep_images[config.scheme], trace, config
        )


@settings(max_examples=30, deadline=None)
@given(config=fetch_configs())
def test_config_json_roundtrip(config):
    rebuilt = config_from_json(config_to_json(config))
    assert config_to_json(rebuilt) == config_to_json(config)
    assert rebuilt.scheme == config.scheme
    assert rebuilt.cache.capacity_bytes == config.cache.capacity_bytes
    assert rebuilt.cache.ways == config.cache.ways
    assert rebuilt.cache.line_bytes == config.cache.line_bytes


# ------------------------------------------------------------ degenerate
def test_single_config_grid_is_one_simulate_fetch(sweep_images):
    trace = list(range(len(sweep_images["base"].image))) * 3
    config = FetchConfig.for_scheme("base", scaled=True)
    batch = simulate_fetch_sweep(sweep_images["base"], trace, [config])
    assert batch == [
        simulate_fetch(sweep_images["base"], trace, config)
    ]


def test_empty_trace_and_empty_grid(sweep_images):
    config = FetchConfig.for_scheme("compressed", scaled=True)
    batch = simulate_fetch_sweep(
        sweep_images["compressed"], [], [config]
    )
    assert batch == [
        simulate_fetch(sweep_images["compressed"], [], config)
    ]
    assert simulate_fetch_sweep_multi(sweep_images, [0, 1], []) == []


def test_multi_requires_an_image_per_scheme(sweep_images):
    config = FetchConfig.for_scheme("tailored", scaled=True)
    with pytest.raises(ConfigurationError, match="tailored"):
        simulate_fetch_sweep_multi(
            {"base": sweep_images["base"]}, [0], [config]
        )


def test_unknown_scheme_raises(sweep_images):
    config = FetchConfig.for_scheme("base", scaled=True)
    bad = FetchConfig(
        scheme="ideal",
        cache=config.cache,
    )
    with pytest.raises(ConfigurationError, match="ideal"):
        simulate_fetch_sweep(sweep_images["base"], [0], [bad])


def test_config_json_rejects_subclassed_table():
    config = FetchConfig.for_scheme("base", scaled=True)
    odd = FetchConfig(
        scheme="base", cache=config.cache,
        penalties=TracingPenaltyTable(),
    )
    with pytest.raises(ConfigurationError, match="PenaltyTable"):
        config_to_json(odd)


def test_config_from_json_rejects_malformed():
    with pytest.raises(ConfigurationError):
        config_from_json({"scheme": "base"})  # no cache
    with pytest.raises(ConfigurationError):
        config_from_json("not a dict")


# ------------------------------------------------------------ expand_grid
def test_expand_grid_collapses_inert_axes():
    grid = expand_grid(
        ("base", "compressed"),
        caches=[(1280, 2, 40)],
        l0_capacities=(8, 32),
        predictors=("block",),
        gshare_bits=(4, 8, 12),
    )
    base = [c for c in grid if c.scheme == "base"]
    comp = [c for c in grid if c.scheme == "compressed"]
    # L0 only matters under compressed; gshare width not under block.
    assert len(base) == 1
    assert sorted(c.l0_capacity_ops for c in comp) == [8, 32]


def test_expand_grid_rejects_unknown_scheme():
    with pytest.raises(ConfigurationError, match="ideal"):
        expand_grid(("ideal",))


# --------------------------------------------------------- run_sweep/store
def test_run_sweep_matches_study_and_warms_store(compress_study):
    grid = expand_grid(
        ("base", "tailored", "compressed"),
        caches=[(1280, 2, 40), (1024, 2, 32)],
        predictors=("block", "gshare"),
    )
    results = run_sweep(
        "compress", grid, scale=compress_study.scale
    )
    assert len(results) == len(grid)
    for config, metrics in zip(grid, results):
        # Same store digests, same values as the figure-study path.
        assert metrics == compress_study.fetch_metrics(
            config.scheme, config
        )
    # Duplicate points answer from the first occurrence.
    doubled = list(grid) + [grid[0]]
    again = run_sweep("compress", doubled, scale=compress_study.scale)
    assert again[-1] == again[0]
    assert again[: len(grid)] == results
