"""Adaptive compression: hybrid per-block tags and the context coder.

Covers the scheme registry (one key authority for CLI/serve/study),
round-trips under randomized heat profiles, per-block tag semantics
(every block must decode under exactly its tagged scheme), the fetch
kernel/reference differential on hybrid images, and the bus flip
accounting hybrid's mixed-width payload mix exercises.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.adaptive import (
    BLOCK_START_CONTEXT,
    COLD_TAG,
    HOT_TAG,
    ContextHuffmanScheme,
    HybridScheme,
    context_of,
    heat_profile,
    hot_block_ids,
)
from repro.compression.registry import (
    HYBRID_DEFAULT_HOTNESS,
    UnknownSchemeError,
    hybrid_key,
    hybrid_profile_source,
    normalize_scheme_key,
    parse_hybrid_key,
    scheme_factory,
)
from repro.errors import CompressionError, ConfigurationError
from repro.power.busmodel import BusModel


# ------------------------------------------------------------- registry
class TestRegistry:
    def test_plain_keys_normalize_to_themselves(self):
        for key in ("base", "byte", "full", "tailored", "context"):
            assert normalize_scheme_key(key) == key

    def test_default_hybrid_key_folds(self):
        assert normalize_scheme_key("hybrid") == "hybrid"
        assert (
            normalize_scheme_key(f"hybrid@{HYBRID_DEFAULT_HOTNESS}")
            == "hybrid"
        )
        assert hybrid_key(HYBRID_DEFAULT_HOTNESS) == "hybrid"

    def test_parameterized_hybrid_keys(self):
        assert parse_hybrid_key("hybrid@0.5") == 0.5
        assert normalize_scheme_key("hybrid@0.5") == "hybrid@0.5"
        assert parse_hybrid_key("tailored") is None

    @pytest.mark.parametrize(
        "key", ["hybrid@", "hybrid@x", "hybrid@1.5", "hybrid@-0.1"]
    )
    def test_malformed_hybrid_keys_rejected(self, key):
        with pytest.raises(UnknownSchemeError):
            normalize_scheme_key(key)

    def test_unknown_key_rejected(self):
        with pytest.raises(UnknownSchemeError):
            normalize_scheme_key("zstd")

    def test_factory_builds_adaptive_schemes(self):
        assert isinstance(scheme_factory("context"), ContextHuffmanScheme)
        hybrid = scheme_factory("hybrid@0.75")
        assert isinstance(hybrid, HybridScheme)
        assert hybrid.hotness == 0.75
        assert hybrid.name == "hybrid@0.75"

    def test_static_suffix_parses_and_folds(self):
        assert parse_hybrid_key("hybrid:static") == HYBRID_DEFAULT_HOTNESS
        assert parse_hybrid_key("hybrid@0.5:static") == 0.5
        assert normalize_scheme_key("hybrid:static") == "hybrid:static"
        assert (
            normalize_scheme_key(f"hybrid@{HYBRID_DEFAULT_HOTNESS}:static")
            == "hybrid:static"
        )
        assert (
            normalize_scheme_key("hybrid@0.5:static") == "hybrid@0.5:static"
        )

    def test_profile_source_classification(self):
        assert hybrid_profile_source("hybrid") == "trace"
        assert hybrid_profile_source("hybrid@0.5") == "trace"
        assert hybrid_profile_source("hybrid:static") == "static"
        assert hybrid_profile_source("hybrid@0.5:static") == "static"
        assert hybrid_profile_source("tailored") is None
        assert hybrid_key(0.5, "static") == "hybrid@0.5:static"
        assert (
            hybrid_key(HYBRID_DEFAULT_HOTNESS, "static") == "hybrid:static"
        )
        with pytest.raises(UnknownSchemeError):
            hybrid_key(0.5, "psychic")

    def test_factory_builds_static_hybrid(self):
        scheme = scheme_factory("hybrid@0.75:static")
        assert isinstance(scheme, HybridScheme)
        assert scheme.hotness == 0.75
        assert scheme.source == "static"
        assert scheme.name == "hybrid@0.75:static"

    @pytest.mark.parametrize(
        "key", ["hybrid@:static", "hybrid@1.5:static", "tailored:static"]
    )
    def test_malformed_static_keys_rejected(self, key):
        with pytest.raises(UnknownSchemeError):
            normalize_scheme_key(key)

    def test_unknown_key_error_lists_known_and_suggests(self):
        with pytest.raises(UnknownSchemeError) as exc:
            normalize_scheme_key("hybird@0.3")
        message = str(exc.value)
        assert "did you mean 'hybrid@0.3'?" in message
        for known in ("base", "byte", "full", "tailored", "context"):
            assert known in message

    def test_typo_without_close_match_gets_no_suggestion(self):
        with pytest.raises(UnknownSchemeError) as exc:
            normalize_scheme_key("zstd")
        assert "did you mean" not in str(exc.value)


# ------------------------------------------------------------- hot sets
class TestHotSet:
    def test_heat_profile_counts(self):
        assert heat_profile([0, 1, 1, 3], 5) == (1, 2, 0, 1, 0)

    def test_hot_set_covers_threshold(self):
        profile = (10, 5, 1, 0)
        # 10/16 already covers 60% of the dynamic fetches.
        assert hot_block_ids(profile, 0.6) == {0}
        # 95% needs all three executed blocks; block 3 never runs.
        assert hot_block_ids(profile, 0.95) == {0, 1, 2}

    def test_zero_threshold_and_dead_blocks(self):
        assert hot_block_ids((3, 2, 1), 0.0) == frozenset()
        assert hot_block_ids((0, 0), 1.0) == frozenset()
        # Never-executed blocks stay cold at any threshold.
        assert 3 not in hot_block_ids((5, 4, 3, 0), 1.0)

    def test_deterministic_tie_break(self):
        # Equal counts break ties toward the lower block id.
        assert hot_block_ids((2, 2, 2), 0.4) == {0, 1}


# ----------------------------------------------------------- roundtrips
@pytest.fixture(scope="module")
def tiny_image(tiny_program):
    return tiny_program[0].image


@pytest.fixture(scope="module")
def tiny_trace(tiny_run):
    return tiny_run[1].block_trace


def test_context_scheme_roundtrips(tiny_image):
    compressed = ContextHuffmanScheme().compress(tiny_image)
    compressed.verify()
    # One stream per context class the image's encode walk visits.
    seen = set()
    for block in tiny_image:
        ctx = BLOCK_START_CONTEXT
        for op in block.ops:
            seen.add(ctx)
            ctx = context_of(op.encode())
    assert set(compressed.context_ids) == seen
    assert list(compressed.context_ids) == sorted(seen)


def test_hybrid_requires_profile(tiny_image):
    with pytest.raises(ConfigurationError):
        HybridScheme(0.5).compress(tiny_image)
    with pytest.raises(CompressionError):
        HybridScheme(0.5).with_profile((1,)).compress(tiny_image)


def test_hybrid_roundtrips_with_trace_profile(tiny_image, tiny_trace):
    profile = heat_profile(tiny_trace, len(tiny_image))
    compressed = (
        HybridScheme(0.5).with_profile(profile).compress(tiny_image)
    )
    compressed.verify()
    assert compressed.scheme_tag_bits == 1
    tags = compressed.block_scheme_tags()
    assert len(tags) == len(tiny_image)
    assert set(tags) <= {HOT_TAG, COLD_TAG}
    assert {b for b, t in enumerate(tags) if t == HOT_TAG} == set(
        hot_block_ids(profile, 0.5)
    )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_hybrid_roundtrips_under_random_profiles(tiny_program, data):
    """Any profile/hotness pair must produce a decodable tagged image."""
    image = tiny_program[0].image
    profile = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=len(image),
            max_size=len(image),
        )
    )
    hotness = data.draw(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    )
    compressed = (
        HybridScheme(hotness).with_profile(profile).compress(image)
    )
    compressed.verify()
    tags = compressed.block_scheme_tags()
    assert {b for b, t in enumerate(tags) if t == HOT_TAG} == set(
        hot_block_ids(profile, hotness)
    )


def test_every_block_decodes_under_its_tagged_scheme(
    tiny_image, tiny_trace
):
    """Hot blocks are pure tailored payloads; cold blocks are pure
    context-Huffman payloads — each decodes with only its tagged
    decoder, independently of the hybrid dispatch."""
    from repro.tailored.encoding import TailoredScheme
    from repro.utils.bitstream import BitReader

    profile = heat_profile(tiny_trace, len(tiny_image))
    compressed = (
        HybridScheme(0.5).with_profile(profile).compress(tiny_image)
    )
    tags = compressed.block_scheme_tags()
    assert HOT_TAG in tags and COLD_TAG in tags
    tailored = TailoredScheme()
    decoders = [s.code.make_decoder() for s in compressed.streams]
    for block in tiny_image:
        expected = [op.encode() for op in block.ops]
        reader = BitReader(compressed.block_bytes(block.block_id))
        if tags[block.block_id] == HOT_TAG:
            got = [
                tailored._decode_op(compressed.spec, reader)
                for _ in range(block.op_count)
            ]
        else:
            got = []
            ctx = BLOCK_START_CONTEXT
            for _ in range(block.op_count):
                decoder = decoders[compressed.context_index[ctx]]
                word = decoder.decode_symbol(reader)
                got.append(word)
                ctx = context_of(word)
        assert got == expected


def test_att_entry_grows_by_exactly_the_tag_bit(tiny_image, tiny_trace):
    from repro.compression.schemes import CompressedImage
    from repro.fetch.atb import att_entry_bits
    from repro.fetch.config import COMPRESSED_CACHE_SCALED

    profile = heat_profile(tiny_trace, len(tiny_image))
    hybrid = (
        HybridScheme(0.5).with_profile(profile).compress(tiny_image)
    )
    # An untagged twin with byte-identical payloads: the only ATT
    # difference left is the 1-bit decoder tag.
    twin = CompressedImage(
        hybrid.scheme,
        tiny_image,
        hybrid.block_payloads,
        hybrid.block_bit_lengths,
        hybrid.streams,
    )
    assert hybrid.scheme_tag_bits == 1
    assert twin.scheme_tag_bits == 0
    geometry = COMPRESSED_CACHE_SCALED
    assert (
        att_entry_bits(hybrid, geometry)
        == att_entry_bits(twin, geometry) + 1
    )


# ------------------------------------------------- fetch differentials
@pytest.fixture(scope="module")
def hybrid_study(compress_study):
    # Materialize the tagged image once for the differential tests.
    compress_study.compressed("hybrid")
    return compress_study


def test_kernel_matches_reference_on_hybrid(hybrid_study):
    import random

    from repro.fetch.config import FetchConfig
    from repro.fetch.engine import simulate_fetch_reference
    from repro.fetch.kernel import simulate_fetch_kernel

    rng = random.Random(8)
    for scheme in ("hybrid", "hybrid@0.6"):
        compressed = hybrid_study.compressed(scheme)
        blocks = len(compressed.image)
        trace = [rng.randrange(blocks) for _ in range(1500)]
        config = FetchConfig.for_scheme(scheme, scaled=True)
        kernel = simulate_fetch_kernel(compressed, trace, config)
        reference = simulate_fetch_reference(compressed, trace, config)
        assert asdict(kernel) == asdict(reference)
        assert kernel.scheme == scheme


def test_sweep_matches_engine_on_hybrid_grid(hybrid_study):
    import random

    from repro.core.sweep import expand_grid
    from repro.fetch.engine import simulate_fetch
    from repro.fetch.sweep import simulate_fetch_sweep_multi

    images = {
        key: hybrid_study.compressed(key)
        for key in ("hybrid", "hybrid@0.6")
    }
    rng = random.Random(9)
    blocks = len(images["hybrid"].image)
    trace = [rng.randrange(blocks) for _ in range(1000)]
    grid = expand_grid(
        ("hybrid",),
        hotness_thresholds=(HYBRID_DEFAULT_HOTNESS, 0.6),
        l0_capacities=(4, 32),
        bus_widths=(4, 8),
    )
    assert {c.scheme for c in grid} == {"hybrid", "hybrid@0.6"}
    batch = simulate_fetch_sweep_multi(images, trace, grid)
    assert len(batch) == len(grid)
    for config, metrics in zip(grid, batch):
        assert asdict(metrics) == asdict(
            simulate_fetch(images[config.scheme], trace, config)
        )


def test_hybrid_fetch_requires_tagged_image(hybrid_study):
    from repro.fetch.config import FetchConfig
    from repro.fetch.engine import simulate_fetch_reference

    full = hybrid_study.compressed("full")
    config = FetchConfig.for_scheme("hybrid", scaled=True)
    with pytest.raises(ConfigurationError):
        simulate_fetch_reference(full, [0, 1], config)


def test_hybrid_probes_l0_only_for_cold_blocks(hybrid_study):
    from repro.fetch.config import FetchConfig
    from repro.fetch.engine import simulate_fetch_reference

    compressed = hybrid_study.compressed("hybrid")
    tags = compressed.block_scheme_tags()
    hot = [b for b, t in enumerate(tags) if t == HOT_TAG]
    assert hot, "default threshold must produce a non-empty hot set"
    config = FetchConfig.for_scheme("hybrid", scaled=True)
    # A trace of only hot blocks never touches the L0 buffer.
    metrics = simulate_fetch_reference(compressed, hot * 50, config)
    assert metrics.buffer_hits == 0
    assert metrics.buffer_misses == 0


# ------------------------------------------------------------ bus model
class TestBusFlipRegression:
    def test_mixed_width_beats_pin_exact_flips(self):
        """Hybrid blocks have mixed payload widths (tailored hot vs
        Huffman cold), so transfers routinely end in partial beats.
        Pin the zero-padded beat framing and cross-transfer state."""
        bus = BusModel(4)
        # 5 bytes on a 4-byte bus: beats ff00ff00 (16 flips from the
        # idle bus) then ff000000 (xor 0x0000ff00 -> 8 flips).
        assert bus.transfer(b"\xff\x00\xff\x00\xff") == 24
        # 2 bytes: one padded beat 0ff00000 (xor ff000000 ->
        # f0f00000 -> 8 flips); state persists across transfers.
        assert bus.transfer(b"\x0f\xf0") == 8
        assert (bus.beats, bus.bytes_transferred, bus.bit_flips) == (
            3,
            7,
            32,
        )

    def test_hybrid_fetch_flips_match_bus_model_replay(
        self, hybrid_study
    ):
        """The engine's flip accounting over one hot and one cold miss
        equals a standalone BusModel replay of the same payloads."""
        from repro.fetch.config import FetchConfig
        from repro.fetch.engine import simulate_fetch_reference
        from repro.fetch.kernel import simulate_fetch_kernel

        compressed = hybrid_study.compressed("hybrid")
        tags = compressed.block_scheme_tags()
        config = FetchConfig.for_scheme("hybrid", scaled=True)

        def lines_of(bid):
            start = compressed.block_offset(bid)
            end = start + max(1, compressed.block_size(bid)) - 1
            width = config.cache.line_bytes
            return set(range(start // width, end // width + 1))

        hot = next(b for b, t in enumerate(tags) if t == HOT_TAG)
        # Pick a cold block sharing no cache line with the hot one, so
        # each first touch is a genuine L1 miss with a bus transfer.
        cold = next(
            b
            for b, t in enumerate(tags)
            if t == COLD_TAG and not (lines_of(b) & lines_of(hot))
        )
        trace = [hot] * 5 + [cold] * 5
        metrics = simulate_fetch_reference(compressed, trace, config)
        hot_payload = compressed.block_bytes(hot)
        cold_payload = compressed.block_bytes(cold)
        # Each block misses the L1 exactly once, in trace order.
        assert metrics.bus_bytes == len(hot_payload) + len(cold_payload)
        bus = BusModel(config.bus_bytes)
        expected_flips = bus.transfer(hot_payload) + bus.transfer(
            cold_payload
        )
        assert metrics.bus_beats == bus.beats
        assert metrics.bus_bit_flips == expected_flips
        kernel = simulate_fetch_kernel(compressed, trace, config)
        assert kernel.bus_bit_flips == expected_flips


# --------------------------------------------------------------- study
def test_study_accepts_hybrid_keys(hybrid_study):
    default = hybrid_study.compressed("hybrid")
    folded = hybrid_study.compressed(f"hybrid@{HYBRID_DEFAULT_HOTNESS}")
    assert folded is default  # same normalized key, same artifact
    metrics = hybrid_study.fetch_metrics("hybrid")
    assert metrics.scheme == "hybrid"
    assert metrics.cycles > 0
