"""Differential guarantee: the cached path is identical to the direct one.

For two benchmarks × two schemes, the runtime-cached results (cold write
and warm read-back) must match a direct :class:`ProgramStudy` computed
with the cache disabled — compression sizes, IPC, and bus-flip counts,
value for value.
"""

import pytest

from repro import runtime
from repro.core.study import ProgramStudy, clear_caches, study_for

BENCHMARKS = ("compress", "go")
SCHEMES = ("full", "byte")
FETCH_SCHEMES = ("base", "compressed")
SCALE = 3


def _direct_results():
    """Ground truth: the historical path, no persistent cache."""
    saved = runtime.runtime_config()
    runtime.configure(enabled=False)
    try:
        results = {}
        for name in BENCHMARKS:
            study = ProgramStudy(name, SCALE)
            results[(name, "static_ops")] = study.compiled.image.total_ops
            results[(name, "dynamic_mops")] = study.run.dynamic_mops
            for scheme in SCHEMES:
                image = study.compressed(scheme)
                results[(name, scheme, "size")] = image.total_code_bytes
                results[(name, scheme, "ratio")] = image.ratio_percent()
            for fetch_scheme in FETCH_SCHEMES:
                metrics = study.fetch_metrics(fetch_scheme)
                results[(name, fetch_scheme, "ipc")] = metrics.ipc
                results[(name, fetch_scheme, "flips")] = (
                    metrics.bus_bit_flips
                )
                results[(name, fetch_scheme, "cycles")] = metrics.cycles
        return results
    finally:
        runtime.set_runtime_config(saved)


def _cached_results():
    results = {}
    for name in BENCHMARKS:
        study = study_for(name, SCALE)
        # touch compile and trace explicitly so every stage is exercised
        results[(name, "static_ops")] = study.compiled.image.total_ops
        results[(name, "dynamic_mops")] = study.run.dynamic_mops
        for scheme in SCHEMES:
            image = study.compressed(scheme)
            results[(name, scheme, "size")] = image.total_code_bytes
            results[(name, scheme, "ratio")] = image.ratio_percent()
        for fetch_scheme in FETCH_SCHEMES:
            metrics = study.fetch_metrics(fetch_scheme)
            results[(name, fetch_scheme, "ipc")] = metrics.ipc
            results[(name, fetch_scheme, "flips")] = metrics.bus_bit_flips
            results[(name, fetch_scheme, "cycles")] = metrics.cycles
    return results


@pytest.fixture(scope="module")
def fresh_cache(tmp_path_factory):
    """A private, empty artifact store for this module."""
    saved = runtime.runtime_config()
    cache_dir = tmp_path_factory.mktemp("differential-cache")
    clear_caches()
    runtime.configure(enabled=True, cache_dir=cache_dir)
    yield cache_dir
    clear_caches()
    runtime.set_runtime_config(saved)


@pytest.fixture(scope="module")
def direct(fresh_cache):
    return _direct_results()


def test_cold_cached_path_matches_direct(fresh_cache, direct):
    clear_caches()
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    cold = _cached_results()
    assert cold == direct
    # the cold pass populated the store
    assert runtime.default_store().stats().entries > 0


def test_warm_cached_path_matches_direct(fresh_cache, direct):
    clear_caches()
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    _cached_results()  # ensure warm
    clear_caches()  # drop in-memory state; disk survives
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    warm = _cached_results()
    assert warm == direct
    report = runtime.REPORT
    assert report.total_hits > 0
    assert report.total_misses == 0, (
        "warm run recomputed a stage: " + report.render()
    )


def test_warm_run_does_zero_recompute_per_stage(fresh_cache, direct):
    """Every stage — compile, trace, compress, fetch — is a pure hit."""
    clear_caches()
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    _cached_results()
    clear_caches()
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    _cached_results()
    for stage in ("compile", "trace", "compress", "fetch"):
        metrics = runtime.REPORT.stage(stage)
        assert metrics.misses == 0, f"{stage} recomputed"
        assert metrics.hits > 0, f"{stage} never consulted the store"


def test_corrupt_entry_recomputes_silently(fresh_cache, direct):
    """Truncating every cache file costs recomputes, never an exception."""
    clear_caches()
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    _cached_results()
    store = runtime.default_store()
    for path in store._iter_entries():
        path.write_bytes(path.read_bytes()[:16])
    clear_caches()
    runtime.configure(enabled=True, cache_dir=fresh_cache)
    recomputed = _cached_results()
    assert recomputed == direct
    assert runtime.REPORT.total_misses > 0  # entries really were dropped