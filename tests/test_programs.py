"""Differential tests: every benchmark vs. its pure-Python oracle.

These are the strongest end-to-end checks in the repo: the whole stack —
builder, optimizer, treegion hoisting, register allocation, lowering,
scheduling, assembly and VLIW emulation — must agree with an independent
reimplementation of each algorithm, at several scales and with
optimizations toggled.
"""

import pytest

from repro.compiler import compile_module
from repro.emulator import run_image
from repro.programs import BENCHMARK_NAMES, SUITE
from repro.programs.kernels import KERNELS

#: Small scales keep the whole matrix fast.
SMALL_SCALE = {
    "compress": 2,
    "go": 1,
    "ijpeg": 1,
    "li": 3,
    "m88ksim": 1,
    "perl": 4,
    "vortex": 3,
    "gcc": 2,
}


def _run(module):
    prog = compile_module(module)
    result = run_image(prog.image, module.globals)
    return prog, result


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_matches_oracle(name):
    spec = SUITE[name]
    scale = SMALL_SCALE[name]
    module = spec.build(scale)
    prog, result = _run(module)
    got = result.machine.load_word(module.globals["result"].address)
    assert got == spec.reference_checksum(scale)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_correct_without_optimizations(name):
    spec = SUITE[name]
    scale = SMALL_SCALE[name]
    module = spec.build(scale)
    prog = compile_module(module, opt=False, hoist=False)
    result = run_image(prog.image, module.globals)
    got = result.machine.load_word(module.globals["result"].address)
    assert got == spec.reference_checksum(scale)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_correct_with_hoisting_only(name):
    """Speculative hoisting alone must never change results."""
    spec = SUITE[name]
    scale = SMALL_SCALE[name]
    module = spec.build(scale)
    prog = compile_module(module, opt=False, hoist=True)
    result = run_image(prog.image, module.globals)
    got = result.machine.load_word(module.globals["result"].address)
    assert got == spec.reference_checksum(scale)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_scales_change_behaviour(name):
    """Different scales produce different checksums (no degenerate
    programs)."""
    spec = SUITE[name]
    a = spec.reference_checksum(SMALL_SCALE[name])
    b = spec.reference_checksum(SMALL_SCALE[name] + 1)
    assert a != b


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_matches_oracle(kernel):
    build, reference = KERNELS[kernel]
    module = build(4)
    prog, result = _run(module)
    got = result.machine.load_word(module.globals["result"].address)
    assert got == reference(4)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_static_properties(name):
    """Every benchmark is a real program: multiple functions, calls,
    branches, loads and stores."""
    from repro.isa.opcodes import Opcode
    from repro.programs.suite import compile_benchmark

    prog = compile_benchmark(name, SMALL_SCALE[name])
    opcodes = {op.opcode for op in prog.image.all_operations()}
    assert Opcode.BR in opcodes
    assert Opcode.LD in opcodes and Opcode.ST in opcodes
    assert Opcode.HALT in opcodes
    functions = {b.function for b in prog.image}
    assert len(functions) >= 2  # main plus at least one callee
    assert prog.image.total_ops >= 100


def test_suite_registry_consistent():
    assert set(BENCHMARK_NAMES) == set(SUITE)
    for spec in SUITE.values():
        assert spec.default_scale >= 1
        assert spec.description
