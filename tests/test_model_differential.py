"""Hypothesis differential tests: hardware models vs. naive references.

The banked cache, ATB and L0 buffer are each compared against a
straightforward reference implementation over random access sequences —
the models must agree event for event.
"""

from hypothesis import given, strategies as st

from repro.fetch.atb import ATB
from repro.fetch.banked_cache import BankedCache
from repro.fetch.config import CacheGeometry
from repro.fetch.l0buffer import L0Buffer
from repro.isa.disasm import (
    disassemble_bytes,
    disassemble_image,
    round_trip_check,
)


class _ReferenceSetAssocCache:
    """Dict-of-lists LRU cache with the banked index function."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.sets: dict[int, list[int]] = {}

    def _bucket_key(self, line: int) -> int:
        bank = line & 1
        index = (line >> 1) % (self.geometry.num_sets // 2)
        return (index << 1) | bank

    def access_block(self, start: int, size: int):
        lines = list(self.geometry.lines_of(start, size))
        missing = 0
        for line in lines:
            bucket = self.sets.setdefault(self._bucket_key(line), [])
            if line not in bucket:
                missing += 1
        for line in lines:
            bucket = self.sets.setdefault(self._bucket_key(line), [])
            if line in bucket:
                bucket.remove(line)
            elif len(bucket) >= self.geometry.ways:
                bucket.pop(0)
            bucket.append(line)
        return missing == 0, len(lines), missing


block_accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4000),  # start byte
        st.integers(min_value=1, max_value=200),  # size bytes
    ),
    max_size=80,
)


@given(block_accesses)
def test_banked_cache_matches_reference(accesses):
    geometry = CacheGeometry("t", 512, 2, 32)
    cache = BankedCache(geometry)
    reference = _ReferenceSetAssocCache(geometry)
    for start, size in accesses:
        assert cache.access_block(start, size) == \
            reference.access_block(start, size)


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=120))
def test_atb_matches_reference_lru(block_ids):
    atb = ATB(entries=16, ways=4)
    sets: dict[int, list[int]] = {}
    for block_id in block_ids:
        key = block_id & (atb.num_sets - 1)
        bucket = sets.setdefault(key, [])
        expected_hit = block_id in bucket
        _, hit = atb.access(block_id)
        assert hit == expected_hit
        if block_id in bucket:
            bucket.remove(block_id)
        elif len(bucket) >= 4:
            bucket.pop(0)
        bucket.append(block_id)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),  # block id
            st.integers(min_value=1, max_value=40),  # op count
        ),
        max_size=100,
    )
)
def test_l0_buffer_matches_reference(accesses):
    l0 = L0Buffer(capacity_ops=32)
    resident: dict[int, int] = {}
    for block_id, ops in accesses:
        expected_hit = block_id in resident
        hit = l0.access(block_id, ops)
        assert hit == expected_hit
        if expected_hit:
            size = resident.pop(block_id)
            resident[block_id] = size  # refresh LRU position
            continue
        if ops > 32:
            continue
        resident.pop(block_id, None)
        while sum(resident.values()) + ops > 32:
            oldest = next(iter(resident))
            resident.pop(oldest)
        resident[block_id] = ops
    assert l0.resident_ops == sum(resident.values())


class TestDisassembler:
    def test_round_trip(self, tiny_program):
        image = tiny_program[0].image
        assert round_trip_check(image)

    def test_listing_structure(self, tiny_program):
        image = tiny_program[0].image
        text = disassemble_image(image)
        assert f"; program {image.name!r}" in text
        for block in image:
            assert f"<{block.label}>" in text
        assert text.count("{") == image.total_mops
        assert text.count("}") == image.total_mops

    def test_partial_stream_rejected(self):
        import pytest

        from repro.errors import DecodingError

        with pytest.raises(DecodingError):
            disassemble_bytes(b"\x00\x01\x02")

    def test_bytes_round_trip_ops(self, tiny_program):
        image = tiny_program[0].image
        ops = disassemble_bytes(image.encode_baseline())
        assert len(ops) == image.total_ops
