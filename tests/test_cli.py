"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro import runtime
from repro.cli import main
from repro.core.study import clear_caches


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("fig5", "fig7", "fig10", "fig13", "fig14"):
        assert exp_id in out


def test_run_fig5_single_benchmark(capsys):
    assert main(
        ["run", "fig5", "--benchmarks", "vortex", "--scale", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "vortex" in out
    assert "tailored%" in out


def test_run_fig10(capsys):
    assert main(
        ["run", "fig10", "--benchmarks", "gcc", "--scale", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "byte" in out and "full" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


@pytest.fixture
def fresh_cache(tmp_path):
    saved = runtime.runtime_config()
    clear_caches()
    runtime.configure(enabled=True, cache_dir=tmp_path / "cache")
    yield
    clear_caches()
    runtime.set_runtime_config(saved)


def test_run_json_includes_rows_and_runtime_report(capsys, fresh_cache):
    assert main(
        ["run", "fig5", "--benchmarks", "compress", "--scale", "2",
         "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "fig5"
    assert payload["headers"][0] == "benchmark"
    assert payload["rows"][0][0] == "compress"
    assert payload["runtime"]["totals"]["misses"] > 0  # cold store


def test_second_run_is_all_cache_hits(capsys, fresh_cache):
    args = ["run", "fig5", "--benchmarks", "compress", "--scale", "2",
            "--json"]
    assert main(args) == 0
    capsys.readouterr()
    clear_caches()
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runtime"]["totals"]["hits"] > 0
    assert payload["runtime"]["totals"]["misses"] == 0


def test_run_no_cache_bypasses_the_store(capsys, fresh_cache):
    assert main(
        ["run", "fig5", "--benchmarks", "compress", "--scale", "2",
         "--no-cache", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runtime"]["totals"]["hits"] == 0
    assert runtime.default_store().stats().entries == 0


def test_run_rows_identical_with_and_without_cache(capsys, fresh_cache):
    args = ["run", "fig5", "--benchmarks", "compress", "--scale", "2",
            "--json"]
    assert main(args + ["--no-cache"]) == 0
    direct = json.loads(capsys.readouterr().out)["rows"]
    clear_caches()
    runtime.configure(enabled=True)
    assert main(args) == 0  # cold
    cold = json.loads(capsys.readouterr().out)["rows"]
    clear_caches()
    assert main(args) == 0  # warm
    warm = json.loads(capsys.readouterr().out)["rows"]
    assert direct == cold == warm


def test_suite_json_reports_failures_and_exits_nonzero(
    capsys, monkeypatch, fresh_cache
):
    from repro.core.study import ProgramStudy

    monkeypatch.setattr(
        ProgramStudy, "verify_checksum", lambda self: self.name != "go"
    )
    assert main(["suite", "--scale", "2", "--json"]) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["failures"] == ["go"]
    assert "go" in captured.err and "MISMATCH" in captured.err


def test_suite_names_failing_benchmark_on_stderr(
    capsys, monkeypatch, fresh_cache
):
    from repro.core.study import ProgramStudy

    monkeypatch.setattr(
        ProgramStudy, "verify_checksum", lambda self: self.name != "perl"
    )
    assert main(["suite", "--scale", "2"]) == 1
    err = capsys.readouterr().err
    assert "perl" in err


def test_suite_ok_exits_zero(capsys, fresh_cache):
    assert main(["suite", "--scale", "2"]) == 0
    out = capsys.readouterr().out
    assert "Benchmark suite" in out
    assert "Runtime report" in out


def test_cache_stats_and_clear(capsys, fresh_cache):
    assert main(
        ["run", "fig5", "--benchmarks", "compress", "--scale", "2",
         "--json"]
    ) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "Artifact cache" in out and "entries" in out
    assert main(["cache", "clear"]) == 0
    assert "dropped" in capsys.readouterr().out
    assert runtime.default_store().stats().entries == 0


def test_run_with_jobs_prewarms_in_parallel(capsys, fresh_cache):
    assert main(
        ["run", "fig10", "--benchmarks", "compress", "go", "--scale", "2",
         "--jobs", "2", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rows"][0][0] == "compress"
    # prewarm computed in workers; the row pass read everything back
    assert payload["runtime"]["totals"]["hits"] > 0


class TestInvocationValidation:
    """Bad flags and malformed REPRO_* values fail fast with exit 2."""

    def test_jobs_zero_rejected(self, capsys):
        assert main(["run", "fig5", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and "0" in err

    def test_jobs_negative_rejected(self, capsys):
        assert main(["suite", "--jobs", "-3"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_malformed_repro_kernel_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "refrence")
        assert main(["list"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_KERNEL" in err and "refrence" in err

    def test_valid_repro_kernel_values_accepted(
        self, capsys, monkeypatch
    ):
        for value in ("ref", "reference", "kernel", "0", "1"):
            monkeypatch.setenv("REPRO_KERNEL", value)
            assert main(["list"]) == 0
            capsys.readouterr()

    def test_malformed_repro_jobs_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert main(["list"]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_malformed_repro_cache_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "maybe")
        assert main(["list"]) == 2
        assert "REPRO_CACHE" in capsys.readouterr().err

    def test_negative_repro_cache_max_bytes_rejected(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-5")
        assert main(["list"]) == 2
        assert "REPRO_CACHE_MAX_BYTES" in capsys.readouterr().err

    def test_library_path_warns_once_and_defaults(self, monkeypatch):
        import warnings

        from repro.runtime.config import config_from_env

        config = None
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = config_from_env({"REPRO_JOBS": "many"})
        assert config.jobs == 1
        assert any(
            "REPRO_JOBS" in str(w.message) for w in caught
        )

    def test_kernel_enabled_warns_on_unknown_value(self, monkeypatch):
        import warnings

        from repro.utils import kernelmode

        monkeypatch.setenv("REPRO_KERNEL", "turbo-mode")
        monkeypatch.setattr(kernelmode, "_warned_values", set())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert kernelmode.kernel_enabled() is True  # defaults on
        assert any(
            "REPRO_KERNEL" in str(w.message) for w in caught
        )


class TestCheckCommand:
    def test_check_quick_passes_and_reports(self, capsys):
        assert main(
            ["check", "--quick", "--benchmarks", "compress",
             "--scale", "2", "--seed", "1999"]
        ) == 0
        captured = capsys.readouterr()
        assert "Invariant report" in captured.out
        assert "huffman-roundtrip" in captured.out
        assert "store-race" in captured.out
        assert "invariant(s) hold" in captured.out

    def test_check_json_payload(self, capsys):
        assert main(
            ["check", "--quick", "--benchmarks", "compress",
             "--scale", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["mode"] == "quick"
        names = [i["name"] for i in payload["invariants"]]
        assert "fetch-conservation" in names
        assert "store-bitflip" in names

    def test_check_seeded_violation_exits_nonzero_naming_it(
        self, capsys
    ):
        assert main(
            ["check", "--quick", "--benchmarks", "compress",
             "--scale", "2", "--inject", "conservation"]
        ) == 1
        captured = capsys.readouterr()
        assert "fetch-conservation" in captured.err
        assert "FAIL" in captured.out

    def test_check_inject_roundtrip(self, capsys):
        assert main(
            ["check", "--quick", "--benchmarks", "compress",
             "--scale", "2", "--inject", "roundtrip"]
        ) == 1
        assert "huffman-roundtrip" in capsys.readouterr().err

    def test_check_unknown_benchmark_exits_two(self, capsys):
        assert main(["check", "--benchmarks", "warp-drive"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_check_quick_and_full_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["check", "--quick", "--full"])


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fetch_replay_base" in out and "bitstream_roundtrip" in out


def test_bench_unknown_name(capsys):
    assert main(["bench", "nope", "--output", "-"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_bench_quick_micro_writes_report(tmp_path, capsys):
    report = tmp_path / "bench.json"
    assert main(
        ["bench", "bitstream_roundtrip", "huffman_decode",
         "--quick", "--repeats", "1", "--output", str(report)]
    ) == 0
    out = capsys.readouterr().out
    assert "Kernel vs reference" in out
    payload = json.loads(report.read_text())
    assert [r["name"] for r in payload["results"]] == [
        "bitstream_roundtrip", "huffman_decode"
    ]
    assert payload["summary"]["all_identical"] is True
    assert all(r["identical"] for r in payload["results"])
    assert all(r["speedup"] > 0 for r in payload["results"])


def test_bench_json_mode_skips_file(capsys):
    assert main(
        ["bench", "huffman_encode", "--quick", "--repeats", "1",
         "--json", "--output", "-"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["results"][0]["name"] == "huffman_encode"
    assert payload["schema"] == 1


class TestAnalyzeCommand:
    def test_analyze_clean_program_exits_zero(self, capsys):
        assert main(
            ["analyze", "--program", "compress", "--scale", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Static analysis (compress)" in out
        assert "0 error(s), 0 warning(s)" in out
        assert "branch-target" in out

    def test_analyze_json_payload(self, capsys):
        assert main(
            ["analyze", "--program", "compress", "--scale", "2",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["programs"] == ["compress"]
        assert payload["checked"]["branch-target"] > 0
        assert payload["diagnostics"] == []

    def test_analyze_injected_violation_exits_one(self, capsys):
        assert main(
            ["analyze", "--program", "compress", "--scale", "2",
             "--inject", "bad-branch"]
        ) == 1
        captured = capsys.readouterr()
        assert "branch-target" in captured.out
        assert "error" in captured.err

    def test_analyze_fail_on_warning_tightens_the_gate(self, capsys):
        # The injected image only has an error, which trips both
        # thresholds; a clean image trips neither.
        assert main(
            ["analyze", "--program", "compress", "--scale", "2",
             "--fail-on", "warning"]
        ) == 0

    def test_analyze_unknown_program_exits_two(self, capsys):
        assert main(["analyze", "--program", "warp-drive"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_analyze_program_and_all_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--program", "compress", "--all"])

    def test_analyze_json_is_deterministic_and_sorted(self, capsys):
        args = ["analyze", "--program", "compress", "--scale", "2",
                "--inject", "bad-branch", "--json"]
        assert main(args) == 1
        first = capsys.readouterr().out
        assert main(args) == 1
        second = capsys.readouterr().out
        assert first == second
        diags = json.loads(first)["diagnostics"]
        assert diags
        rank = {"error": 0, "warning": 1, "info": 2}
        keys = [
            (rank[d["severity"]], d["program"], d["rule"],
             d["block_id"] if d["block_id"] is not None else -1,
             d["op_index"] if d["op_index"] is not None else -1,
             d["scheme"] or "", d["block"] or "", d["message"],
             d["hint"] or "")
            for d in diags
        ]
        assert keys == sorted(keys)

    def test_analyze_bounds_table(self, capsys):
        assert main(
            ["analyze", "--program", "compress", "--scale", "2",
             "--bounds"]
        ) == 0
        out = capsys.readouterr().out
        assert "Static fetch-cycle bounds vs simulator" in out
        assert "hybrid:static" in out

    def test_analyze_bounds_json_brackets(self, capsys):
        assert main(
            ["analyze", "--program", "compress", "--scale", "2",
             "--bounds", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["bounds"]
        for entry in payload["bounds"]:
            assert entry["bracketed"] is True
            assert (
                entry["lower_cycles"]
                <= entry["simulated_cycles"]
                <= entry["upper_cycles"]
            )

    def test_analyze_bounds_rejects_server_mode(self, capsys):
        assert main(
            ["analyze", "--program", "compress", "--bounds",
             "--via-server"]
        ) == 2
        assert "--bounds" in capsys.readouterr().err

    def test_analyze_rejects_malformed_gate_env(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ANALYZE", "maybe")
        assert main(
            ["analyze", "--program", "compress", "--scale", "2"]
        ) == 2
        assert "REPRO_ANALYZE" in capsys.readouterr().err


class TestSweepCommand:
    ARGS = [
        "sweep", "compress", "--scale", "2",
        "--scheme", "base", "--scheme", "compressed",
        "--cache", "512:2:16", "--cache", "1024:2:32",
        "--l0", "8", "--l0", "32",
    ]

    def test_sweep_table_output(self, capsys, fresh_cache):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Sweep (compress@2, 6 configs)" in out
        assert "base" in out and "compressed" in out
        assert "512:2:16" in out and "1024:2:32" in out

    def test_sweep_json_payload_shape(self, capsys, fresh_cache):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        sweep = payload["sweep"]
        # 2 caches × (base + compressed×2 L0) = 6 config points.
        assert sweep["benchmark"] == "compress"
        assert sweep["scale"] == 2
        assert sweep["configs"] == 6
        assert len(sweep["results"]) == 6
        entry = sweep["results"][0]
        assert entry["config"]["scheme"] == "base"
        assert entry["metrics"]["cycles"] > 0
        assert entry["ipc"] > 0
        assert payload["metrics"]["totals"]["misses"] > 0  # cold store

    def test_sweep_results_warm_the_store(self, capsys, fresh_cache):
        assert main(self.ARGS + ["--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        clear_caches()
        assert main(self.ARGS + ["--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["sweep"] == cold["sweep"]
        assert warm["metrics"]["totals"]["misses"] == 0

    def test_sweep_malformed_cache_flag_exits_two(self, capsys):
        assert main(
            ["sweep", "compress", "--cache", "512:2"]
        ) == 2
        assert "--cache expects N:N:N" in capsys.readouterr().err

    def test_sweep_invalid_geometry_exits_two(self, capsys):
        assert main(
            ["sweep", "compress", "--cache", "600:2:32"]
        ) == 2
        assert "configuration error" in capsys.readouterr().err

    def test_sweep_unknown_benchmark_exits_two(self, capsys):
        assert main(["sweep", "warp-drive", "--scale", "2"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["1.5", "0", "-0.2"])
    def test_sweep_out_of_range_hotness_exits_two(self, capsys, value):
        assert main(
            ["sweep", "compress", "--scale", "2",
             "--scheme", "hybrid", "--hotness", value]
        ) == 2
        err = capsys.readouterr().err
        assert "--hotness must lie in (0, 1]" in err
        assert value.lstrip("-").rstrip("0").rstrip(".") in err or value in err

    def test_sweep_scheme_typo_suggests_fix(self, capsys):
        assert main(
            ["sweep", "compress", "--scale", "2",
             "--scheme", "hybird@0.3"]
        ) == 2
        assert "did you mean 'hybrid@0.3'?" in capsys.readouterr().err

    def test_sweep_hotness_source_axis(self, capsys, fresh_cache):
        assert main(
            ["sweep", "compress", "--scale", "2",
             "--scheme", "hybrid", "--hotness", "0.5",
             "--hotness-source", "trace", "--hotness-source", "static",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        schemes = {
            entry["config"]["scheme"]
            for entry in payload["sweep"]["results"]
        }
        assert schemes == {"hybrid@0.5", "hybrid@0.5:static"}
