"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("fig5", "fig7", "fig10", "fig13", "fig14"):
        assert exp_id in out


def test_run_fig5_single_benchmark(capsys):
    assert main(
        ["run", "fig5", "--benchmarks", "vortex", "--scale", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "vortex" in out
    assert "tailored%" in out


def test_run_fig10(capsys):
    assert main(
        ["run", "fig10", "--benchmarks", "gcc", "--scale", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "byte" in out and "full" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
