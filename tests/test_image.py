"""Tests for program-image structure and invariants."""

import pytest

from repro.errors import EncodingError
from repro.isa import MultiOp, Opcode, Operation
from repro.isa.image import BasicBlockImage, OP_BYTES, ProgramImage
from repro.isa.registers import gpr, pred


def _block(block_id, ops, fallthrough=None, label=None):
    return BasicBlockImage(
        block_id=block_id,
        label=label or f"b{block_id}",
        mops=(MultiOp.of(ops),),
        fallthrough=fallthrough,
    )


def _alu(d=1):
    return Operation(Opcode.ADD, dest=gpr(d), src1=gpr(2), src2=gpr(3))


class TestBasicBlockImage:
    def test_counts_and_sizes(self):
        block = _block(0, [_alu(), Operation(Opcode.HALT)])
        assert block.op_count == 2
        assert block.mop_count == 1
        assert block.baseline_bytes == 2 * OP_BYTES
        assert len(block.encode_baseline()) == block.baseline_bytes

    def test_terminator_found_in_last_mop(self):
        block = _block(0, [_alu(), Operation(Opcode.HALT)])
        assert block.terminator is not None
        assert block.terminator.opcode is Opcode.HALT

    def test_no_terminator(self):
        block = _block(0, [_alu()], fallthrough=1)
        assert block.terminator is None

    def test_branch_targets_collected(self):
        br = Operation(Opcode.BR, target_block=3, predicate=pred(1))
        block = _block(0, [br], fallthrough=1)
        assert block.branch_targets == (3,)

    def test_empty_block_rejected(self):
        with pytest.raises(EncodingError):
            BasicBlockImage(block_id=0, label="x", mops=())

    def test_block_id_range_checked(self):
        with pytest.raises(EncodingError):
            _block(1 << 16, [Operation(Opcode.HALT)])


class TestProgramImage:
    def _image(self):
        blocks = [
            _block(0, [_alu()], fallthrough=1),
            _block(
                1,
                [Operation(Opcode.BR, target_block=0, predicate=pred(1))],
                fallthrough=2,
            ),
            _block(2, [Operation(Opcode.HALT)]),
        ]
        return ProgramImage("p", blocks)

    def test_block_ids_must_match_layout(self):
        with pytest.raises(EncodingError):
            ProgramImage("p", [_block(1, [Operation(Opcode.HALT)])])

    def test_dangling_branch_target_rejected(self):
        blocks = [
            _block(
                0,
                [Operation(Opcode.BR, target_block=9, predicate=pred(1))],
                fallthrough=1,
            ),
            _block(1, [Operation(Opcode.HALT)]),
        ]
        with pytest.raises(EncodingError):
            ProgramImage("p", blocks)

    def test_dangling_fallthrough_rejected(self):
        with pytest.raises(EncodingError):
            ProgramImage(
                "p", [_block(0, [_alu()], fallthrough=7)]
            )

    def test_addresses_are_cumulative(self):
        image = self._image()
        addresses = image.baseline_addresses()
        assert addresses[0] == 0
        assert addresses[1] == image.block(0).baseline_bytes
        assert image.baseline_code_bytes == sum(
            b.baseline_bytes for b in image
        )

    def test_lookup_by_label(self):
        image = self._image()
        assert image.block_by_label("b1").block_id == 1

    def test_encode_baseline_concatenates(self):
        image = self._image()
        assert image.encode_baseline() == b"".join(
            b.encode_baseline() for b in image
        )

    def test_all_operations_order(self):
        image = self._image()
        ops = list(image.all_operations())
        assert len(ops) == image.total_ops
        assert ops[-1].opcode is Opcode.HALT

    def test_empty_program_rejected(self):
        with pytest.raises(EncodingError):
            ProgramImage("p", [])

    def test_entry_block_checked(self):
        with pytest.raises(EncodingError):
            ProgramImage(
                "p", [_block(0, [Operation(Opcode.HALT)])], entry_block=5
            )


class TestCompiledImageInvariants:
    """Invariants every compiler-produced image satisfies."""

    def test_tail_bits_mark_mop_ends(self, tiny_program):
        image = tiny_program[0].image
        for block in image:
            for mop in block.mops:
                *body, last = mop.ops
                assert last.tail
                assert not any(op.tail for op in body)

    def test_every_block_reachable_target_valid(self, tiny_program):
        image = tiny_program[0].image
        n = len(image)
        for block in image:
            for target in block.branch_targets:
                assert 0 <= target < n
            if block.fallthrough is not None:
                assert 0 <= block.fallthrough < n

    def test_exactly_one_halt(self, tiny_program):
        image = tiny_program[0].image
        halts = [
            op for op in image.all_operations()
            if op.opcode is Opcode.HALT
        ]
        assert len(halts) == 1

    def test_terminators_never_mid_block(self, tiny_program):
        image = tiny_program[0].image
        for block in image:
            for mop in block.mops[:-1]:
                assert not mop.has_control_transfer
