"""In-process daemon tests: dedup, backpressure, differential identity.

The :class:`~repro.serve.server.ReproServer` runs inside the test
process (its accept loop is a daemon thread), so tests reach both sides:
real clients over the real Unix socket on one end, the job table and
its counters on the other.  Daemon *subprocess* behavior — signals,
exit codes, kill recovery — lives in ``repro.check.serve_faults`` and
runs under ``repro check --scope serve``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.errors import CheckError, RemoteError, ServeError, ServerBusy
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.handlers import HANDLERS, Handler, study_payload
from repro.serve.server import ReproServer


@contextmanager
def running_server(tmp_path, **kwargs):
    server = ReproServer(tmp_path / "serve.sock", **kwargs)
    server.start()
    try:
        yield server
    finally:
        server.stop()


def _gather(workers):
    """Run thunks concurrently; list of results or raised exceptions."""
    results = [None] * len(workers)

    def _call(index, thunk):
        try:
            results[index] = thunk()
        except Exception as exc:
            results[index] = exc

    threads = [
        threading.Thread(target=_call, args=(i, w))
        for i, w in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "worker hung"
    return results


def test_ping_round_trip(tmp_path):
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            pong = client.ping()
            assert pong["pong"] is True
            assert pong["protocol"] == protocol.PROTOCOL_VERSION


def test_study_byte_identical_to_in_process(tmp_path):
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            response = client.study("compress", 3, ["byte"])
    local = study_payload("compress", 3, ["byte"])
    assert response["result"] == local
    # Byte-for-byte under canonical JSON, the differential gate.
    assert json.dumps(response["result"], sort_keys=True) == json.dumps(
        local, sort_keys=True
    )


def test_warm_request_recomputes_nothing(tmp_path):
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            first = client.study("compress", 3, ["byte"])
            second = client.study("compress", 3, ["byte"])
    assert second["result"] == first["result"]
    # The per-request stage metrics prove no stage re-ran: a warm
    # request may hit the store or the in-process memo, but it must
    # never take a miss (a miss is a recompute).
    stages = (second["metrics"] or {}).get("stages", {})
    assert all(s["misses"] == 0 for s in stages.values())


def test_default_scale_and_explicit_default_share_a_dedup_key(tmp_path):
    from repro.programs.suite import SUITE

    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            implicit = client.study("compress", None, ["byte"])
            explicit = client.study(
                "compress", SUITE["compress"].default_scale, ["byte"]
            )
    assert implicit["dedup"]["key"] == explicit["dedup"]["key"]


def test_concurrent_identical_studies_execute_once(tmp_path, monkeypatch):
    # Widen the join window deterministically: the real study handler
    # still runs (and its metrics are captured), after a short sleep
    # that keeps the first request in flight while the others arrive.
    real = HANDLERS["study"]

    def slow_execute(ctx, params):
        time.sleep(0.6)
        return real.execute(ctx, params)

    monkeypatch.setitem(
        HANDLERS, "study", Handler("study", real.normalize, slow_execute)
    )
    with running_server(tmp_path, max_inflight=8) as server:
        before = server.jobs_table.stats.as_dict()

        def one_request():
            with ServeClient(server.socket_path) as client:
                return client.study("compress", 3, ["byte"])

        responses = _gather([one_request] * 4)
        after = server.jobs_table.stats.as_dict()
    for response in responses:
        assert not isinstance(response, Exception), response
    # Exactly one execution; the other three joined it.
    assert after["executed"] - before["executed"] == 1
    assert after["dedup_hits"] - before["dedup_hits"] == 3
    shared_flags = sorted(r["dedup"]["shared"] for r in responses)
    assert shared_flags == [False, True, True, True]
    # All four received the same result *and* the same single
    # execution's stage metrics.
    blobs = {
        json.dumps(
            {"result": r["result"], "metrics": r["metrics"]},
            sort_keys=True,
        )
        for r in responses
    }
    assert len(blobs) == 1


def test_failing_job_propagates_same_error_to_all_waiters(
    tmp_path, monkeypatch
):
    def failing_execute(ctx, params):
        time.sleep(0.5)
        raise CheckError("deliberate shared failure")

    real = HANDLERS["bench"]
    monkeypatch.setitem(
        HANDLERS,
        "bench",
        Handler("bench", lambda params: {}, failing_execute),
    )
    del real  # only the patched handler matters here
    with running_server(tmp_path, max_inflight=8) as server:
        before = server.jobs_table.stats.as_dict()

        def one_request():
            with ServeClient(server.socket_path) as client:
                return client.bench()

        outcomes = _gather([one_request] * 3)
        after = server.jobs_table.stats.as_dict()
    assert after["failed"] - before["failed"] == 1
    assert after["executed"] - before["executed"] == 0
    assert after["dedup_hits"] - before["dedup_hits"] == 2
    for outcome in outcomes:
        assert isinstance(outcome, RemoteError)
        assert outcome.error_type == "CheckError"
        assert outcome.remote_message == "deliberate shared failure"


def test_busy_reject_and_instant_ping_under_saturation(tmp_path):
    with running_server(tmp_path, max_inflight=1) as server:
        hold = threading.Thread(
            target=lambda: ServeClient(server.socket_path).request(
                "ping", {"delay": 1.2, "tag": "hold"}
            )
        )
        hold.start()
        deadline = time.monotonic() + 5.0
        while (
            server.jobs_table.inflight() == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert server.jobs_table.inflight() == 1
        with ServeClient(server.socket_path) as client:
            # A *distinct* delayed ping cannot join and cannot be
            # admitted: explicit busy with a retry hint.
            with pytest.raises(ServerBusy) as excinfo:
                client.request("ping", {"delay": 1.2, "tag": "other"})
            assert excinfo.value.retry_after > 0
            # The instant health probe bypasses admission entirely.
            assert client.ping()["pong"] is True
            # An *identical* request joins despite the full table —
            # dedup never consumes admission capacity.
            joined = client.request("ping", {"delay": 1.2, "tag": "hold"})
            assert joined["dedup"]["shared"] is True
        hold.join(timeout=10.0)
        assert server.jobs_table.stats.busy_rejects >= 1


def test_bad_params_is_a_typed_remote_error(tmp_path):
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.study("no-such-benchmark")
            assert excinfo.value.error_type == "bad-params"
            # The connection survived the typed error.
            assert client.ping()["pong"] is True


def test_recoverable_protocol_error_keeps_connection(tmp_path):
    with running_server(tmp_path) as server:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(str(server.socket_path))
        try:
            protocol.send_frame(
                sock,
                {"request_id": "r1", "kind": "frobnicate", "params": {}},
            )
            reply = protocol.recv_frame(sock)
            assert reply["status"] == "error"
            assert reply["error"]["type"] == "unknown-kind"
            # Same connection, next frame: still served.
            protocol.send_frame(
                sock, protocol.make_request("r2", "ping", {})
            )
            reply = protocol.recv_frame(sock)
            assert reply["status"] == "ok"
            assert reply["result"]["pong"] is True
        finally:
            sock.close()


def test_unrecoverable_protocol_error_closes_connection(tmp_path):
    with running_server(tmp_path) as server:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(str(server.socket_path))
        try:
            sock.sendall(b"EVILEVILEVIL - not this protocol")
            # Best-effort typed reply, then close; either way the
            # stream ends and the daemon survives.
            try:
                reply = protocol.recv_frame(sock)
            except Exception:
                reply = None
            if reply is not None:
                assert reply["status"] == "error"
                try:
                    assert protocol.recv_frame(sock) is None
                except OSError:
                    pass  # reset instead of FIN: still a close
        finally:
            sock.close()
        with ServeClient(server.socket_path) as client:
            assert client.ping()["pong"] is True


def test_client_disconnect_mid_response_leaves_daemon_alive(tmp_path):
    with running_server(tmp_path) as server:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(server.socket_path))
        protocol.send_frame(
            sock,
            protocol.make_request("gone", "ping", {"delay": 0.3}),
        )
        sock.close()  # vanish while the job is still running
        time.sleep(0.6)
        with ServeClient(server.socket_path) as client:
            assert client.ping()["pong"] is True


def test_shutdown_request_drains_and_unbinds(tmp_path):
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            assert client.shutdown() == {"stopping": True}
        assert server.stopping
        server.stop()
        assert not server.socket_path.exists()
        with pytest.raises(ServeError):
            ServeClient(server.socket_path, timeout=1.0).connect()


def test_no_new_work_admitted_while_draining(tmp_path):
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            client.shutdown()
            with pytest.raises(RemoteError) as excinfo:
                client.request("ping", {"delay": 0.2})
            assert excinfo.value.error_type == "shutting-down"


def test_two_daemons_cannot_share_a_socket(tmp_path):
    from repro.errors import ReproError

    with running_server(tmp_path) as server:
        second = ReproServer(server.socket_path)
        with pytest.raises(ReproError):
            second.start()


def test_stale_socket_file_is_replaced(tmp_path):
    # A crashed daemon leaves the socket file behind; the next start
    # probes it, finds nobody listening, and takes over.
    first = ReproServer(tmp_path / "serve.sock")
    first.start()
    first._listener.close()  # simulate a crash: file stays bound
    first._stopping.set()
    first._accept_thread.join(timeout=5.0)
    assert first.socket_path.exists()
    with running_server(tmp_path) as server:
        with ServeClient(server.socket_path) as client:
            assert client.ping()["pong"] is True


# ------------------------------------------------------- busy backoff
class _FakeTime:
    """Deterministic monotonic clock; sleeping advances it."""

    def __init__(self):
        self.now = 100.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class _FakeRandom:
    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


class _BusyNTimes(ServeClient):
    """A client whose wire layer reports busy ``n`` times, then ok."""

    def __init__(self, n, retry_after=1.0, **kwargs):
        super().__init__("unused.sock", **kwargs)
        self.remaining = n
        self.retry_after = retry_after
        self.requests = 0

    def request(self, kind, params=None):
        self.requests += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise ServerBusy("busy", retry_after=self.retry_after)
        return {"status": "ok", "result": {"kind": kind}}


@pytest.fixture
def fake_clock(monkeypatch):
    from repro.serve import client as client_mod

    clock = _FakeTime()
    monkeypatch.setattr(client_mod, "time", clock)
    monkeypatch.setattr(client_mod, "random", _FakeRandom(1.0))
    return clock


def test_call_backoff_doubles_then_caps(fake_clock):
    # retry_after=1.0, full jitter factor: 1, 2, 4 then pinned at the
    # 5.0 cap however many attempts keep failing.
    client = _BusyNTimes(5, retry_after=1.0, timeout=None)
    assert client.call("ping", retries=5)["status"] == "ok"
    assert fake_clock.sleeps == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_call_backoff_respects_server_hint_floor(fake_clock):
    from repro.serve.client import BUSY_BACKOFF_BASE

    # A zero/noise retry_after hint is lifted to the base delay.
    client = _BusyNTimes(1, retry_after=0.0, timeout=None)
    client.call("ping", retries=1)
    assert fake_clock.sleeps == [BUSY_BACKOFF_BASE]


def test_call_backoff_jitter_lower_bound(fake_clock, monkeypatch):
    from repro.serve import client as client_mod

    monkeypatch.setattr(client_mod, "random", _FakeRandom(0.0))
    client = _BusyNTimes(2, retry_after=1.0, timeout=None)
    client.call("ping", retries=2)
    # Jitter scales each sleep into [0.5, 1.0]x; at the low edge the
    # exponential shape must survive.
    assert fake_clock.sleeps == [0.5, 1.0]


def test_call_reraises_when_retries_exhausted(fake_clock):
    client = _BusyNTimes(10, retry_after=1.0, timeout=None)
    with pytest.raises(ServerBusy):
        client.call("ping", retries=2)
    assert len(fake_clock.sleeps) == 2
    assert client.requests == 3


def test_call_backoff_respects_overall_timeout(fake_clock):
    # timeout=3s budgets the whole retry loop: the first 2s sleep fits,
    # the next (4s) would overrun, so the busy error surfaces instead
    # of sleeping past the caller's deadline.
    client = _BusyNTimes(10, retry_after=2.0, timeout=3.0)
    with pytest.raises(ServerBusy):
        client.call("ping", retries=10)
    assert fake_clock.sleeps == [2.0]
    assert client.requests == 2


# ------------------------------------------- scheme-key normalization
def test_study_rejects_unknown_scheme_as_bad_params():
    from repro.errors import ProtocolError

    normalize = HANDLERS["study"].normalize
    with pytest.raises(ProtocolError) as excinfo:
        normalize({"benchmark": "compress", "schemes": ["zstd"]})
    assert excinfo.value.code == "bad-params"
    with pytest.raises(ProtocolError):
        normalize({"benchmark": "compress", "schemes": ["hybrid@1.5"]})


def test_study_normalize_folds_hybrid_aliases():
    normalized = HANDLERS["study"].normalize(
        {
            "benchmark": "compress",
            "schemes": ["hybrid@0.3", "hybrid", "full"],
        }
    )
    assert normalized["schemes"] == ["full", "hybrid"]


def test_study_normalize_does_not_swallow_real_failures(monkeypatch):
    # The old code validated keys by calling the scheme factory under a
    # bare ``except Exception`` — a genuinely broken factory then
    # masqueraded as the client's fault.  Key validation must not touch
    # the factory at all: a crash there surfaces at execute time as an
    # internal error, never as bad-params.
    from repro.compression import registry

    def boom(key):
        raise RuntimeError("factory exploded")

    monkeypatch.setattr(registry, "scheme_factory", boom)
    normalized = HANDLERS["study"].normalize(
        {"benchmark": "compress", "schemes": ["full", "hybrid@0.6"]}
    )
    assert normalized["schemes"] == ["full", "hybrid@0.6"]


def test_sweep_grid_hotness_axis_normalizes():
    normalized = HANDLERS["sweep"].normalize(
        {
            "benchmark": "compress",
            "grid": {
                "schemes": ["hybrid"],
                "hotness_thresholds": [0.25, 0.6],
            },
        }
    )
    schemes = {c["scheme"] for c in normalized["configs"]}
    assert schemes == {"hybrid@0.25", "hybrid@0.6"}


def test_sweep_grid_rejects_bad_hybrid_key():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError) as excinfo:
        HANDLERS["sweep"].normalize(
            {
                "benchmark": "compress",
                "grid": {"schemes": ["hybrid@2.0"]},
            }
        )
    assert excinfo.value.code == "bad-params"
