"""The generic dataflow solver, against brute-force oracles.

The Hypothesis properties pit the worklist solver against independent
re-implementations on randomized digraphs — including graphs with
unreachable nodes, self loops and critical edges — so a solver bug
cannot hide behind the analyses' own assumptions:

* dominators vs the node-removal oracle (``d`` dominates ``n`` iff
  removing ``d`` disconnects ``n`` from the entry);
* liveness vs a naive round-robin fixed point (the pre-refactor
  algorithm of :mod:`repro.compiler.liveness`, kept inline here);
* definite assignment vs an avoid-the-generators reachability oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dataflow import (
    definitely_assigned,
    dominators,
    live_variables,
    predecessors,
    reachable,
    reaching_definitions,
    solve,
)
from repro.errors import AnalysisError

# ------------------------------------------------------------ strategies
MAX_NODES = 7
FACTS = ("a", "b", "c")


@st.composite
def digraphs(draw):
    """A random ``{node: [succs]}`` digraph over ``0..n-1``."""
    n = draw(st.integers(min_value=1, max_value=MAX_NODES))
    cfg = {}
    for node in range(n):
        succs = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                max_size=3,
                unique=True,
            )
        )
        cfg[node] = succs
    return cfg


@st.composite
def digraphs_with_facts(draw):
    cfg = draw(digraphs())
    sets = {
        node: set(
            draw(st.lists(st.sampled_from(FACTS), max_size=2, unique=True))
        )
        for node in cfg
    }
    return cfg, sets


# ------------------------------------------------------------ the oracles
def _dominates_oracle(cfg, entry, d, n):
    """d dom n iff every entry->n path passes through d."""
    if d == n:
        return True
    if d == entry:
        return True
    # BFS from entry avoiding d; if n is still reachable, d does not
    # dominate it.
    seen = {entry}
    stack = [entry]
    while stack:
        node = stack.pop()
        if node == n:
            return False
        for succ in cfg[node]:
            if succ != d and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return True


def _liveness_oracle(cfg, use, deff):
    """The pre-refactor round-robin fixed point, kept independent."""
    live_in = {n: set() for n in cfg}
    live_out = {n: set() for n in cfg}
    changed = True
    while changed:
        changed = False
        for node in cfg:
            out = set()
            for succ in cfg[node]:
                out |= live_in[succ]
            new_in = use[node] | (out - deff[node])
            if out != live_out[node] or new_in != live_in[node]:
                live_out[node] = out
                live_in[node] = new_in
                changed = True
    return live_in, live_out


def _assigned_oracle(cfg, entry, gen, seed, fact):
    """Nodes whose entry is *missing* ``fact``: reachable from the
    entry along paths whose earlier nodes never generate it."""
    missing = set()
    if fact not in seed:
        missing.add(entry)
        stack = [entry]
        while stack:
            node = stack.pop()
            if fact in gen[node]:
                continue  # paths through this node acquire the fact
            for succ in cfg[node]:
                if succ not in missing:
                    missing.add(succ)
                    stack.append(succ)
    return missing


# ------------------------------------------------------------- properties
@settings(max_examples=80, deadline=None)
@given(digraphs())
def test_dominators_match_path_enumeration_oracle(cfg):
    entry = 0
    doms = dominators(cfg, entry)
    keep = reachable(cfg, entry)
    assert set(doms) == set(keep)
    for n in keep:
        for d in cfg:
            expected = d in keep and _dominates_oracle(cfg, entry, d, n)
            assert (d in doms[n]) == expected, (cfg, d, n)


@settings(max_examples=80, deadline=None)
@given(digraphs_with_facts(), digraphs_with_facts())
def test_liveness_matches_roundrobin_oracle(graph_use, graph_deff):
    cfg, use = graph_use
    _, deff_raw = graph_deff
    # Align the def sets onto the first graph's node set.
    deff = {n: deff_raw.get(n, set()) for n in cfg}
    result = live_variables(cfg, use, deff)
    live_in, live_out = _liveness_oracle(cfg, use, deff)
    for node in cfg:
        assert set(result.before[node]) == live_in[node]
        assert set(result.after[node]) == live_out[node]


@settings(max_examples=80, deadline=None)
@given(digraphs_with_facts(), st.sets(st.sampled_from(FACTS)))
def test_definite_assignment_matches_avoidance_oracle(graph, seed):
    cfg, gen = graph
    entry = 0
    result = definitely_assigned(cfg, entry, gen, seed=seed)
    keep = reachable(cfg, entry)
    assert set(result.before) == set(keep)
    for fact in FACTS:
        missing = _assigned_oracle(cfg, entry, gen, seed, fact)
        for node in keep:
            assert (fact not in result.before[node]) == (
                node in missing
            ), (cfg, gen, seed, fact, node)


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_dominance_is_reflexive_and_entry_dominates_all(cfg):
    doms = dominators(cfg, 0)
    for node, ds in doms.items():
        assert node in ds
        assert 0 in ds


# ------------------------------------------------------------------ units
def test_diamond_dominators():
    cfg = {0: [1, 2], 1: [3], 2: [3], 3: []}
    doms = dominators(cfg, 0)
    assert set(doms[3]) == {0, 3}  # neither arm dominates the join
    assert set(doms[1]) == {0, 1}


def test_unreachable_nodes_are_omitted_from_dominators():
    cfg = {0: [1], 1: [], 2: [1]}  # node 2 unreachable
    doms = dominators(cfg, 0)
    assert 2 not in doms
    assert set(doms[1]) == {0, 1}


def test_diamond_definite_assignment():
    cfg = {0: [1, 2], 1: [3], 2: [3], 3: []}
    one_arm = definitely_assigned(cfg, 0, {1: {"x"}})
    assert "x" not in one_arm.before[3]
    both_arms = definitely_assigned(cfg, 0, {1: {"x"}, 2: {"x"}})
    assert "x" in both_arms.before[3]


def test_seed_facts_hold_everywhere_reachable():
    cfg = {0: [1], 1: [0]}
    result = definitely_assigned(cfg, 0, {}, seed={"sp"})
    assert "sp" in result.before[0]
    assert "sp" in result.before[1]


def test_reaching_definitions_kill_earlier_sites():
    cfg = {0: [1], 1: [2], 2: []}
    defs = {0: [("x", "d0")], 1: [("x", "d1")], 2: []}
    result = reaching_definitions(cfg, defs)
    assert set(result.before[2]) == {("x", "d1")}
    assert set(result.before[1]) == {("x", "d0")}


def test_reaching_definitions_merge_at_joins():
    cfg = {0: [1, 2], 1: [3], 2: [3], 3: []}
    defs = {1: [("x", "d1")], 2: [("x", "d2")]}
    result = reaching_definitions(cfg, defs)
    assert set(result.before[3]) == {("x", "d1"), ("x", "d2")}


def test_predecessors_reject_dangling_edges():
    with pytest.raises(AnalysisError):
        predecessors({0: [7]})


def test_reachable_requires_a_known_entry():
    with pytest.raises(AnalysisError):
        reachable({0: []}, 9)


def test_must_analysis_requires_a_universe():
    with pytest.raises(AnalysisError):
        solve({0: []}, gen={}, may=False)


def test_backward_result_is_reported_in_program_order():
    # One block using 'x': live-in has it, live-out does not.
    result = live_variables({0: []}, {0: {"x"}}, {0: set()})
    assert set(result.before[0]) == {"x"}
    assert set(result.after[0]) == set()


def test_compiler_liveness_still_matches_on_a_real_function(tiny_program):
    """The refactored analyze_liveness agrees with the inline oracle."""
    from repro.compiler.cfg import build_cfg
    from repro.compiler.liveness import (
        analyze_liveness,
        instr_kills,
        instr_uses,
    )

    prog, _, _ = tiny_program
    func = next(iter(prog.module.functions.values()))
    cfg = build_cfg(func)
    use, deff = {}, {}
    for block in func.blocks:
        upward, killed = set(), set()
        for instr in block.all_instrs():
            for r in instr_uses(instr):
                if r not in killed:
                    upward.add(r)
            killed.update(instr_kills(instr))
        use[block.label] = upward
        deff[block.label] = killed
    live_in, live_out = _liveness_oracle(cfg, use, deff)
    result = analyze_liveness(func)
    assert result.live_in == live_in
    assert result.live_out == live_out
