"""Tests for the experiment layer: studies, caching, figure row shapes."""

import pytest

from repro.core import EXPERIMENTS
from repro.core.experiments import (
    fig5_compression_rows,
    fig7_att_rows,
    fig10_decoder_rows,
    fig13_cache_rows,
    fig14_busflip_rows,
)
from repro.core.study import ProgramStudy, SCHEME_ORDER, study_for
from repro.errors import ConfigurationError

#: One small benchmark keeps the figure tests quick.
BENCH = ["compress"]
SCALE = 3


class TestProgramStudy:
    def test_artifacts_cached(self, compress_study):
        assert compress_study.compiled is compress_study.compiled
        assert compress_study.run is compress_study.run
        assert compress_study.compressed("full") is \
            compress_study.compressed("full")

    def test_checksum_verifies(self, compress_study):
        assert compress_study.verify_checksum()

    def test_unknown_scheme_rejected(self, compress_study):
        with pytest.raises(ConfigurationError):
            compress_study.compressed("nope")

    def test_unknown_fetch_scheme_rejected(self, compress_study):
        with pytest.raises(ConfigurationError):
            compress_study.fetch_metrics("nope")

    def test_stream_search_returns_two_configs(self, compress_study):
        by_decoder, by_size = compress_study.best_stream_keys()
        results = compress_study.stream_results()
        assert by_decoder in results and by_size in results
        # stream_1 (best size) is no larger than the decoder-optimal one.
        assert results[by_size].total_code_bytes <= \
            results[by_decoder].total_code_bytes

    def test_study_for_memoizes(self):
        assert study_for("compress", 3) is study_for("compress", 3)
        with pytest.raises(ConfigurationError):
            study_for("nope")

    def test_fetch_uses_full_scheme_for_compressed(self, compress_study):
        metrics = compress_study.fetch_metrics("compressed")
        assert metrics.code_bytes == \
            compress_study.compressed("full").total_code_bytes

    def test_scheme_order_constant(self):
        assert "full" in SCHEME_ORDER and "tailored" in SCHEME_ORDER


class TestFigureRows:
    def test_fig5_shape(self):
        headers, rows = fig5_compression_rows(BENCH, SCALE)
        assert rows[-1][0] == "average"
        row = rows[0]
        byte_pct = row[headers.index("byte%")]
        full_pct = row[headers.index("full%")]
        tailored_pct = row[headers.index("tailored%")]
        # The paper's headline ordering on every benchmark.
        assert full_pct < tailored_pct < 100.0
        assert full_pct < byte_pct < 100.0

    def test_fig7_shape(self):
        headers, rows = fig7_att_rows(BENCH, SCALE)
        row = rows[0]
        assert row[headers.index("att_bytes")] > 0
        assert 0 < row[headers.index("att_overhead%")] < 100
        assert row[headers.index("atb_hit%")] > 50.0

    def test_fig10_shape(self):
        headers, rows = fig10_decoder_rows(BENCH, SCALE)
        row = rows[0]
        byte_cost = row[headers.index("byte")]
        full_cost = row[headers.index("full")]
        # Figure 10: best compression -> largest decoder.
        assert full_cost > byte_cost > 0

    def test_fig13_shape(self):
        headers, rows = fig13_cache_rows(BENCH, SCALE)
        row = rows[0]
        ideal = row[headers.index("ideal")]
        for scheme in ("base", "compressed", "tailored"):
            value = row[headers.index(scheme)]
            assert 0 < value <= ideal

    def test_fig14_shape(self):
        headers, rows = fig14_busflip_rows(BENCH, SCALE)
        row = rows[0]
        assert row[headers.index("base_flips")] >= 0
        compressed = row[headers.index("compressed%of_base")]
        tailored = row[headers.index("tailored%of_base")]
        # Savings track the degree of compression (Figure 14).
        assert compressed <= tailored <= 110.0

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig5", "fig7", "fig10", "fig13", "fig14", "adaptive",
            "static",
        }
        for experiment in EXPERIMENTS.values():
            assert experiment.bench.startswith("benchmarks/")
            assert callable(experiment.runner)
