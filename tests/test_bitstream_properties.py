"""Hypothesis properties for the kernelized bit packing and decoding.

Random variable-width write sequences must render identically through
``BitWriter`` and ``ReferenceBitWriter`` and read back exactly; random
frequency tables must decode identically through the canonical-table
decoder and the per-length reference walk.  These complement the fixed
workloads in ``tests/test_kernel_differential.py`` with generated ones.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.compression.huffman import HuffmanCode, HuffmanDecoder
from repro.utils.bitstream import BitReader, BitWriter, ReferenceBitWriter

#: (value, width) pairs with value guaranteed to fit the width.
chunks = st.lists(
    st.integers(min_value=1, max_value=48).flatmap(
        lambda width: st.tuples(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            st.just(width),
        )
    ),
    max_size=120,
)


@given(chunks)
def test_writers_render_identical_streams(pairs):
    fast, reference = BitWriter(), ReferenceBitWriter()
    for value, width in pairs:
        fast.write(value, width)
        reference.write(value, width)
    assert fast.bit_length == reference.bit_length
    assert fast.to_int() == reference.to_int()
    assert fast.to_bytes() == reference.to_bytes()
    assert fast.to_bitstring() == reference.to_bitstring()


@given(chunks)
def test_reader_round_trips_fast_writer(pairs):
    writer = BitWriter()
    for value, width in pairs:
        writer.write(value, width)
    reader = BitReader.from_writer(writer)
    assert [reader.read(width) for _, width in pairs] == [
        value for value, _ in pairs
    ]
    assert reader.remaining == 0


@given(chunks, st.integers(min_value=0, max_value=7))
def test_alignment_matches_reference(pairs, extra_bits):
    fast, reference = BitWriter(), ReferenceBitWriter()
    for writer in (fast, reference):
        for value, width in pairs:
            writer.write(value, width)
        if extra_bits:
            writer.write(0, extra_bits)
        writer.align_to_byte()
    assert fast.bit_length == reference.bit_length
    assert fast.bit_length % 8 == 0
    assert fast.to_bytes() == reference.to_bytes()


frequency_tables = st.dictionaries(
    keys=st.integers(min_value=0, max_value=400),
    values=st.integers(min_value=1, max_value=10_000),
    min_size=2,
    max_size=48,
)


@given(frequency_tables, st.data())
@settings(deadline=None)
def test_canonical_decoder_matches_reference(frequencies, data):
    code = HuffmanCode.from_frequencies(frequencies, max_length=16)
    symbols = data.draw(
        st.lists(st.sampled_from(sorted(frequencies)), max_size=64)
    )
    writer = BitWriter()
    for symbol in symbols:
        code.encode_symbol(symbol, writer)
    payload, bits = writer.to_bytes(), writer.bit_length

    decoder = HuffmanDecoder(code)
    decoder._use_kernel = True  # exercise the canonical table directly
    kernel_reader = BitReader(payload, bits)
    reference_reader = BitReader(payload, bits)
    assert [
        decoder.decode_symbol(kernel_reader) for _ in symbols
    ] == symbols
    assert [
        decoder.decode_symbol_reference(reference_reader) for _ in symbols
    ] == symbols
    assert kernel_reader.position == reference_reader.position == bits
