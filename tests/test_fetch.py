"""Tests for the fetch path: caches, ATB, predictor, L0, penalties, bus."""

import pytest

from repro.errors import ConfigurationError
from repro.fetch.atb import ATB, att_bytes, att_entry_bits
from repro.fetch.banked_cache import BankedCache
from repro.fetch.branch_predict import (
    BlockMeta,
    BlockPredictor,
    KIND_COND_BRANCH,
    KIND_FALLTHROUGH,
    KIND_HALT,
    KIND_JUMP,
    KIND_RET,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
)
from repro.fetch.config import (
    BASE_CACHE,
    CacheGeometry,
    COMPRESSED_CACHE,
    FetchConfig,
    PenaltyTable,
    TAILORED_CACHE,
)
from repro.fetch.l0buffer import L0Buffer
from repro.power.busmodel import BusModel


class TestGeometry:
    def test_paper_geometries(self):
        assert BASE_CACHE.capacity_bytes == 20 * 1024
        assert BASE_CACHE.line_bytes == 40
        assert TAILORED_CACHE.capacity_bytes == 16 * 1024
        assert COMPRESSED_CACHE.line_bytes == 32
        # Paper pairing: same set count, 2-way.
        assert BASE_CACHE.num_sets == TAILORED_CACHE.num_sets == 256
        assert BASE_CACHE.ways == 2

    def test_lines_of(self):
        geo = CacheGeometry("t", 1024, 2, 32)
        assert list(geo.lines_of(0, 32)) == [0]
        assert list(geo.lines_of(31, 2)) == [0, 1]
        assert list(geo.lines_of(64, 100)) == [2, 3, 4, 5]

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("bad", 1000, 2, 32)  # not divisible
        with pytest.raises(ConfigurationError):
            CacheGeometry("bad", 192, 2, 32)  # 3 sets

    def test_zero_size_block_rejected(self):
        with pytest.raises(ConfigurationError):
            BASE_CACHE.lines_of(0, 0)


class TestPenaltyTable:
    """Table 1, all 24 cells, verbatim."""

    @pytest.fixture
    def table(self):
        return PenaltyTable()

    @pytest.mark.parametrize(
        "scheme,correct,hit,expected",
        [
            ("base", True, True, 1),
            ("tailored", True, True, 1),
            ("base", False, True, 2),
            ("tailored", False, True, 2),
        ],
    )
    def test_hit_rows_ignore_n(self, table, scheme, correct, hit, expected):
        for n in (1, 4):
            assert table.initiation_cycles(
                scheme, pred_correct=correct, cache_hit=hit,
                buffer_hit=False, n=n,
            ) == expected

    @pytest.mark.parametrize(
        "scheme,correct,base",
        [
            ("base", True, 1),
            ("tailored", True, 2),
            ("base", False, 8),
            ("tailored", False, 9),
        ],
    )
    def test_miss_rows_scale_with_n(self, table, scheme, correct, base):
        for n in (1, 3, 7):
            assert table.initiation_cycles(
                scheme, pred_correct=correct, cache_hit=False,
                buffer_hit=False, n=n,
            ) == base + (n - 1)

    def test_compressed_buffer_hit_always_one_cycle(self, table):
        for correct in (True, False):
            for hit in (True, False):
                assert table.initiation_cycles(
                    "compressed", pred_correct=correct, cache_hit=hit,
                    buffer_hit=True, n=5,
                ) == 1

    @pytest.mark.parametrize(
        "correct,hit,base",
        [(True, True, 1), (True, False, 3), (False, True, 2),
         (False, False, 10)],
    )
    def test_compressed_buffer_miss_rows(self, table, correct, hit, base):
        for n in (1, 2, 5):
            assert table.initiation_cycles(
                "compressed", pred_correct=correct, cache_hit=hit,
                buffer_hit=False, n=n,
            ) == base + (n - 1)

    def test_unknown_scheme_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.initiation_cycles(
                "weird", pred_correct=True, cache_hit=True,
                buffer_hit=False, n=1,
            )

    def test_invalid_n_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.initiation_cycles(
                "base", pred_correct=True, cache_hit=True,
                buffer_hit=False, n=0,
            )


class TestBankedCache:
    def _cache(self, sets=4, ways=2, line=32):
        return BankedCache(
            CacheGeometry("t", sets * ways * line, ways, line)
        )

    def test_miss_then_hit(self):
        cache = self._cache()
        hit, total, missing = cache.access_block(0, 64)
        assert not hit and total == 2 and missing == 2
        hit, total, missing = cache.access_block(0, 64)
        assert hit and missing == 0

    def test_partial_presence_counts_as_miss(self):
        cache = self._cache()
        cache.access_block(0, 32)  # line 0 only
        hit, total, missing = cache.access_block(0, 64)
        assert not hit and missing == 1  # only line 1 was absent

    def test_lru_eviction_within_set(self):
        cache = self._cache(sets=2, ways=2, line=32)
        geo = cache.geometry
        # Three blocks mapping to the same bucket evict the oldest.
        lines = []
        for line in range(0, 64):
            if len(lines) == 3:
                break
            probe = BankedCache(geo)
            if (line & 1) == 0 and ((line >> 1) % 1) == 0:
                lines.append(line)
        a, b, c = 0, 4, 8  # all even lines, same bank
        cache.access_block(a * 32, 1)
        cache.access_block(b * 32, 1)
        cache.access_block(c * 32, 1)
        assert not cache.probe_line(a) or not cache.probe_line(b)

    def test_atomic_block_refetch(self):
        """On any missing line, the whole block is (re)installed."""
        cache = self._cache()
        cache.access_block(0, 96)  # lines 0..2
        assert cache.lines_fetched == 3
        hit, _, _ = cache.access_block(0, 96)
        assert hit

    def test_counters(self):
        cache = self._cache()
        cache.access_block(0, 32)
        cache.access_block(0, 32)
        assert cache.accesses == 2
        assert cache.hit_rate == 0.5


class TestATB:
    def test_hit_and_miss_counting(self):
        atb = ATB(entries=8, ways=2)
        _, hit = atb.access(3)
        assert not hit
        _, hit = atb.access(3)
        assert hit
        assert atb.hits == 1 and atb.misses == 1
        assert atb.hit_rate == 0.5

    def test_eviction_loses_predictor_state(self):
        atb = ATB(entries=4, ways=1)  # 4 direct-mapped sets
        entry, _ = atb.access(0)
        entry.predictor.counter = STRONG_TAKEN
        atb.access(4)  # same set (4 % 4 == 0) evicts block 0
        entry2, hit = atb.access(0)
        assert not hit
        assert entry2.predictor.counter != STRONG_TAKEN or \
            entry2 is not entry

    def test_lru_within_set(self):
        atb = ATB(entries=8, ways=2)
        atb.access(0)
        atb.access(8)   # same set, fills both ways
        atb.access(0)   # touch 0 -> 8 becomes LRU
        atb.access(16)  # evicts 8
        _, hit = atb.access(0)
        assert hit
        _, hit = atb.access(8)
        assert not hit

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            ATB(entries=10, ways=4)
        with pytest.raises(ConfigurationError):
            ATB(entries=24, ways=4)  # 6 sets, not a power of two

    def test_att_sizing(self, compress_study):
        compressed = compress_study.compressed("full")
        geo = FetchConfig.for_scheme("compressed").cache
        bits = att_entry_bits(compressed, geo)
        assert bits > 0
        assert att_bytes(compressed, geo) == (
            bits * len(compressed.image) + 7
        ) // 8


def _meta(kind, target=None, fallthrough=None):
    return BlockMeta(
        block_id=0, kind=kind, target=target, fallthrough=fallthrough,
        mop_count=1, op_count=1,
    )


class TestPredictor:
    def test_fallthrough_always_predicted(self):
        p = BlockPredictor()
        assert p.predict(_meta(KIND_FALLTHROUGH, fallthrough=7)) == 7

    def test_halt_predicts_nothing(self):
        assert BlockPredictor().predict(_meta(KIND_HALT)) is None

    def test_jump_uses_static_target(self):
        assert BlockPredictor().predict(_meta(KIND_JUMP, target=9)) == 9

    def test_two_bit_counter_hysteresis(self):
        p = BlockPredictor()
        meta = _meta(KIND_COND_BRANCH, target=5, fallthrough=6)
        # Initially weakly taken.
        assert p.predict(meta) == 5
        p.update(meta, 6)  # not taken -> weakly not-taken
        assert p.predict(meta) == 6
        p.update(meta, 5)  # taken -> weakly taken again
        assert p.predict(meta) == 5
        p.update(meta, 5)
        p.update(meta, 5)
        assert p.counter == STRONG_TAKEN
        p.update(meta, 6)  # one not-taken from strong stays taken
        assert p.predict(meta) == 5

    def test_counter_saturates(self):
        p = BlockPredictor()
        meta = _meta(KIND_COND_BRANCH, target=5, fallthrough=6)
        for _ in range(10):
            p.update(meta, 6)
        assert p.counter == STRONG_NOT_TAKEN
        for _ in range(10):
            p.update(meta, 5)
        assert p.counter == STRONG_TAKEN

    def test_ret_uses_last_target(self):
        p = BlockPredictor()
        meta = _meta(KIND_RET)
        assert p.predict(meta) is None  # no history yet
        p.update(meta, 42)
        assert p.predict(meta) == 42
        p.update(meta, 17)
        assert p.predict(meta) == 17


class TestL0Buffer:
    def test_miss_installs_then_hits(self):
        l0 = L0Buffer(capacity_ops=32)
        assert not l0.access(1, 10)
        assert l0.access(1, 10)
        assert l0.hit_rate == 0.5

    def test_lru_eviction_by_ops(self):
        l0 = L0Buffer(capacity_ops=32)
        l0.access(1, 16)
        l0.access(2, 16)  # full
        l0.access(1, 16)  # touch 1 -> 2 is LRU
        l0.access(3, 16)  # evicts 2
        assert l0.access(1, 16)
        assert not l0.access(2, 16)

    def test_oversized_block_never_resides(self):
        l0 = L0Buffer(capacity_ops=32)
        assert not l0.access(9, 40)
        assert not l0.access(9, 40)
        assert l0.resident_ops == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            L0Buffer(capacity_ops=0)

    def test_paper_capacity_is_default(self):
        assert FetchConfig.for_scheme("compressed").l0_capacity_ops == 32


class TestBusModel:
    def test_flip_counting(self):
        bus = BusModel(bus_bytes=1)
        bus.transfer(bytes([0xFF]))  # 8 flips from 0
        assert bus.bit_flips == 8
        bus.transfer(bytes([0xFF]))  # identical beat: 0 flips
        assert bus.bit_flips == 8
        bus.transfer(bytes([0x0F]))  # 4 flips
        assert bus.bit_flips == 12

    def test_state_persists_across_transfers(self):
        bus = BusModel(bus_bytes=2)
        bus.transfer(bytes([0xFF, 0xFF]))
        first = bus.bit_flips
        bus.transfer(bytes([0xFF, 0xFF]))
        assert bus.bit_flips == first

    def test_partial_beat_padded(self):
        bus = BusModel(bus_bytes=4)
        bus.transfer(bytes([0xF0]))
        assert bus.beats == 1
        assert bus.bytes_transferred == 1

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            BusModel(bus_bytes=0)
