"""Tests for fallthrough-chain merging (complex fetch units)."""

import pytest

from repro.compression.schemes import BaselineScheme, FullOpHuffmanScheme
from repro.emulator import run_image
from repro.fetch.superblock import (
    form_chains,
    merge_fallthrough_chains,
    transform_trace,
)
from repro.tailored.encoding import TailoredScheme


@pytest.fixture(scope="module")
def merged(compress_study):
    image = compress_study.compiled.image
    return image, *merge_fallthrough_chains(image)


class TestChains:
    def test_chains_partition_blocks(self, compress_study):
        image = compress_study.compiled.image
        chains = form_chains(image)
        members = [b for chain in chains for b in chain]
        assert sorted(members) == list(range(len(image)))

    def test_chain_members_are_fallthrough_linked(self, compress_study):
        image = compress_study.compiled.image
        for chain in form_chains(image):
            for a, b in zip(chain, chain[1:]):
                block = image.block(a)
                assert block.terminator is None
                assert block.fallthrough == b

    def test_merging_reduces_or_keeps_block_count(self, merged):
        image, merged_image, _ = merged
        assert len(merged_image) <= len(image)

    def test_ops_preserved(self, merged):
        image, merged_image, _ = merged
        assert merged_image.total_ops == image.total_ops
        assert merged_image.total_mops == image.total_mops

    def test_targets_remapped_validly(self, merged):
        _, merged_image, _ = merged
        n = len(merged_image)
        for block in merged_image:
            for target in block.branch_targets:
                assert 0 <= target < n

    def test_merged_image_executes_identically(self, merged):
        image, merged_image, _ = merged
        module = None
        # Re-run the merged image directly: same program semantics.
        from repro.core.study import study_for

        study = study_for("compress", 3)
        module = study.compiled.module
        result = run_image(merged_image, module.globals)
        address = module.globals["result"].address
        baseline = study.run.machine.load_word(address)
        assert result.machine.load_word(address) == baseline

    def test_merged_image_compresses_and_roundtrips(self, merged):
        _, merged_image, _ = merged
        for scheme in (BaselineScheme(), FullOpHuffmanScheme(),
                       TailoredScheme()):
            scheme.compress(merged_image).verify()


class TestTraceTransform:
    def test_trace_folds_onto_units(self, compress_study, merged):
        image, merged_image, unit_of_block = merged
        trace = compress_study.run.block_trace
        unit_trace = transform_trace(trace, image, unit_of_block)
        # Unit trace is no longer than the block trace and visits only
        # valid unit ids.
        assert len(unit_trace) <= len(trace)
        assert all(0 <= u < len(merged_image) for u in unit_trace)
        # Ops delivered are identical either way.
        block_ops = sum(image.block(b).op_count for b in trace)
        unit_ops = sum(
            merged_image.block(u).op_count for u in unit_trace
        )
        assert unit_ops == block_ops

    def test_unit_trace_consistent_with_emulation(self, merged):
        """Re-emulating the merged image yields the folded trace."""
        image, merged_image, unit_of_block = merged
        from repro.core.study import study_for

        study = study_for("compress", 3)
        trace = study.run.block_trace
        folded = transform_trace(trace, image, unit_of_block)
        module = study.compiled.module
        rerun = run_image(merged_image, module.globals)
        assert list(rerun.block_trace) == folded
