"""Tests for statistics helpers, table rendering, and 32-bit semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.arith import (
    div_trunc,
    mod_trunc,
    shift_amount,
    unsigned32,
    wrap32,
)
from repro.utils.stats import (
    geometric_mean,
    mean,
    median,
    percent,
    ratio,
    weighted_mean,
)
from repro.utils.tables import format_table


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([5, 1, 3]) == 3

    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_ratio_and_percent(self):
        assert ratio(1, 4) == 0.25
        assert percent(1, 4) == 25.0
        assert ratio(0, 0) == 0.0
        with pytest.raises(ZeroDivisionError):
            ratio(1, 0)

    def test_weighted_mean(self):
        assert weighted_mean([1, 3], [1, 3]) == 2.5
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [0, 0])


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in text
        assert "-" in lines[-1]

    def test_title(self):
        text = format_table(["c"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestArith:
    def test_wrap32_identity_in_range(self):
        assert wrap32(123) == 123
        assert wrap32(-123) == -123

    def test_wrap32_overflow(self):
        assert wrap32(2**31) == -(2**31)
        assert wrap32(-(2**31) - 1) == 2**31 - 1
        assert wrap32(2**32) == 0

    def test_unsigned32(self):
        assert unsigned32(-1) == 0xFFFFFFFF

    def test_shift_amount_masks(self):
        assert shift_amount(33) == 1
        assert shift_amount(-1) == 31

    @pytest.mark.parametrize(
        "a,b,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)],
    )
    def test_div_mod_trunc_toward_zero(self, a, b, q, r):
        assert div_trunc(a, b) == q
        assert mod_trunc(a, b) == r


@given(st.integers())
def test_wrap32_range_property(x):
    y = wrap32(x)
    assert -(2**31) <= y < 2**31
    assert (y - x) % (2**32) == 0


@given(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.integers(min_value=-(2**31), max_value=2**31 - 1).filter(bool),
)
def test_div_mod_invariant_property(a, b):
    """a == div_trunc(a,b)*b + mod_trunc(a,b), |r| < |b|, sign(r)=sign(a)."""
    q = div_trunc(a, b)
    r = mod_trunc(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    assert r == 0 or (r > 0) == (a > 0)
