"""Tests for register allocation, scheduling, treegions and lowering."""

import pytest

from repro.compiler import ModuleBuilder, compile_module
from repro.compiler.machine import MBlock, MInstr
from repro.compiler.regalloc import (
    ALLOCATABLE,
    FP_SCRATCH_A,
    FP_SCRATCH_B,
    INT_SCRATCH_A,
    INT_SCRATCH_B,
    SP,
    SPILL_ADDR_SCRATCH,
    allocate_registers,
)
from repro.compiler.schedule import (
    LATENCY,
    latency_of,
    schedule_block,
)
from repro.compiler.treegion import form_treegions, hoist_into_parents
from repro.compiler.ir import RegClass
from repro.emulator import run_image
from repro.errors import RegisterAllocationError, ScheduleError
from repro.isa.multiop import ISSUE_WIDTH, MEMORY_UNITS
from repro.isa.opcodes import Opcode
from repro.isa.registers import TRUE_PREDICATE, gpr, pred


def _compile_and_check(mb, out, expected):
    module = mb.build()
    prog = compile_module(module)
    result = run_image(prog.image, module.globals)
    assert result.machine.load_word(out) == expected
    return prog


class TestRegisterAllocation:
    def test_reserved_registers_never_allocated(self):
        reserved = {SP, SPILL_ADDR_SCRATCH, INT_SCRATCH_A, INT_SCRATCH_B,
                    FP_SCRATCH_A, FP_SCRATCH_B}
        for pool in ALLOCATABLE.values():
            assert reserved.isdisjoint(pool)

    def test_high_pressure_spills_and_stays_correct(self):
        """More simultaneously-live values than GPRs forces spills."""
        count = 40  # > 28 allocatable GPRs
        mb = ModuleBuilder("pressure")
        out = mb.global_array("result", words=1)
        b = mb.function("main", num_args=0)
        regs = []
        for i in range(count):
            v = b.ireg()
            b.li(v, i + 1)
            regs.append(v)
        total = b.ireg()
        b.li(total, 0)
        for v in regs:  # all still live here
            b.add(total, total, v)
        addr = b.ireg()
        b.la(addr, "result")
        b.store(addr, total)
        b.halt()
        b.done()
        module = mb.build()
        prog = compile_module(module, opt=False)
        assert prog.stats.spill_slots["main"] > 0
        result = run_image(prog.image, module.globals)
        assert result.machine.load_word(out) == count * (count + 1) // 2

    def test_values_live_across_calls_survive(self, call_program):
        prog, out = call_program
        result = run_image(prog.image, prog.module.globals)
        assert result.machine.load_word(out) == 8  # fib(6)

    def test_predicate_live_across_call_rejected(self):
        mb = ModuleBuilder("predcall")
        mb.global_array("result", words=1)
        f = mb.function("leaf", num_args=0)
        f.ret()
        f.done()
        b = mb.function("main", num_args=0)
        p = b.preg()
        one = b.iconst(1)
        b.cmpi_eq(p, one, 1)
        b.call("leaf")
        b.br_if(p, "somewhere")  # p is live across the call
        b.halt()
        b.label("somewhere")
        b.halt()
        b.done()
        with pytest.raises(RegisterAllocationError):
            compile_module(mb.build())

    def test_allocation_output_is_physical(self):
        mb = ModuleBuilder("phys")
        b = mb.function("main", num_args=0)
        v = b.iconst(2)
        w = b.ireg()
        b.add(w, v, v)
        b.halt()
        b.done()
        func = mb.module.functions["main"]
        allocate_registers(func)
        from repro.isa.registers import Register

        for instr in func.all_instrs():
            for reg in (*instr.reads(), *instr.writes()):
                assert isinstance(reg, Register)


def _alu(dest, a, b):
    return MInstr(Opcode.ADD, dest=gpr(dest), src1=gpr(a), src2=gpr(b))


class TestScheduler:
    def _cycles(self, block, instr):
        for packet, cycle in zip(block.schedule, block.schedule_cycles):
            if instr in packet:
                return cycle
        raise AssertionError("instruction not scheduled")

    def test_raw_dependence_separates_cycles(self):
        producer = _alu(1, 2, 3)
        consumer = _alu(4, 1, 1)
        block = MBlock("b", [producer, consumer])
        schedule_block(block)
        assert self._cycles(block, consumer) > self._cycles(block, producer)

    def test_latency_respected(self):
        load = MInstr(Opcode.LD, dest=gpr(1), src1=gpr(2))
        use = _alu(3, 1, 1)
        block = MBlock("b", [load, use])
        schedule_block(block)
        gap = self._cycles(block, use) - self._cycles(block, load)
        assert gap >= latency_of(Opcode.LD)

    def test_independent_ops_pack_together(self):
        instrs = [_alu(i, 10 + i, 20 % 28) for i in range(4)]
        mops = schedule_block(MBlock("b", instrs))
        assert len(mops) == 1
        assert len(mops[0]) == 4

    def test_issue_width_limit(self):
        instrs = [_alu(i, 20, 21) for i in range(ISSUE_WIDTH + 2)]
        mops = schedule_block(MBlock("b", instrs))
        assert all(len(p) <= ISSUE_WIDTH for p in mops)
        assert sum(len(p) for p in mops) == ISSUE_WIDTH + 2

    def test_memory_unit_limit(self):
        loads = [
            MInstr(Opcode.LD, dest=gpr(i), src1=gpr(20))
            for i in range(5)
        ]
        mops = schedule_block(MBlock("b", loads))
        for packet in mops:
            assert sum(1 for i in packet if i.is_memory) <= MEMORY_UNITS

    def test_waw_not_same_cycle(self):
        first = _alu(1, 2, 3)
        second = _alu(1, 4, 5)
        block = MBlock("b", [first, second])
        schedule_block(block)
        assert self._cycles(block, second) > self._cycles(block, first)

    def test_store_load_ordering(self):
        store = MInstr(Opcode.ST, src1=gpr(1), src2=gpr(2))
        load = MInstr(Opcode.LD, dest=gpr(3), src1=gpr(1))
        block = MBlock("b", [store, load])
        schedule_block(block)
        assert self._cycles(block, load) > self._cycles(block, store)

    def test_terminator_in_last_cycle(self):
        instrs = [_alu(i, 20, 21) for i in range(3)]
        instrs.append(MInstr(Opcode.HALT))
        mops = schedule_block(MBlock("b", instrs))
        assert any(i.opcode is Opcode.HALT for i in mops[-1])

    def test_control_not_last_rejected(self):
        instrs = [MInstr(Opcode.HALT), _alu(1, 2, 3)]
        with pytest.raises(ScheduleError):
            schedule_block(MBlock("b", instrs))

    def test_empty_block_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_block(MBlock("b", []))

    def test_predicated_select_serialized(self):
        """mov d,a ; mov d,b ?p must not share a cycle (WAW)."""
        mov1 = MInstr(Opcode.MOV, dest=gpr(1), src1=gpr(2))
        mov2 = MInstr(Opcode.MOV, dest=gpr(1), src1=gpr(3),
                      predicate=pred(4))
        block = MBlock("b", [mov1, mov2])
        schedule_block(block)
        assert self._cycles(block, mov2) > self._cycles(block, mov1)

    def test_all_ops_scheduled_exactly_once(self):
        instrs = [_alu((i * 5) % 28, (i * 3) % 28, (i * 7) % 28)
                  for i in range(20)]
        mops = schedule_block(MBlock("b", instrs))
        flat = [i for p in mops for i in p]
        assert len(flat) == len(instrs)
        assert {id(i) for i in flat} == {id(i) for i in instrs}

    def test_latency_table_sane(self):
        assert all(v >= 1 for v in LATENCY.values())
        assert latency_of(Opcode.ADD) == 1


class TestTreegion:
    def test_treegions_partition_blocks(self, tiny_program):
        from repro.compiler.lower import lower_module

        module, _ = (tiny_program[0].module, None)
        mmodule = lower_module(module)
        for func in mmodule.functions:
            regions = form_treegions(func)
            labels = [lbl for r in regions for lbl in r.blocks]
            assert sorted(labels) == sorted(
                b.label for b in func.blocks
            )

    def test_loop_header_is_region_root(self):
        from repro.compiler.lower import lower_module
        from tests.conftest import build_counting_module

        module, _ = build_counting_module("tg")
        # Compile up to lowering only (fresh module, no scheduling).
        from repro.compiler.regalloc import allocate_registers

        for func in module.functions.values():
            allocate_registers(func)
        mmodule = lower_module(module)
        func = mmodule.functions[0]
        regions = form_treegions(func)
        roots = {r.root for r in regions}
        assert "loop" in roots  # the back edge forces a new region

    def test_hoisting_marks_speculative(self):
        from repro.compiler.lower import lower_module
        from repro.compiler.regalloc import allocate_registers
        from tests.conftest import build_call_module

        module, _ = build_call_module("tg2")
        for func in module.functions.values():
            allocate_registers(func)
        mmodule = lower_module(module)
        moved = sum(hoist_into_parents(f) for f in mmodule.functions)
        if moved:
            spec_ops = [
                i
                for f in mmodule.functions
                for blk in f.blocks
                for i in blk.instrs
                if i.speculative
            ]
            assert len(spec_ops) == moved


class TestLowering:
    def test_arguments_pass_through_stack(self):
        mb = ModuleBuilder("args")
        out = mb.global_array("result", words=1)
        f = mb.function("combine", num_args=3)
        a, b_, c = f.arg(0), f.arg(1), f.arg(2)
        t = f.ireg()
        f.mpy(t, a, b_)
        f.sub(t, t, c)
        f.ret(t)
        f.done()
        m = mb.function("main", num_args=0)
        x = m.iconst(6)
        y = m.iconst(7)
        z = m.iconst(2)
        r = m.ireg()
        m.call("combine", args=[x, y, z], ret=r)
        addr = m.ireg()
        m.la(addr, "result")
        m.store(addr, r)
        m.halt()
        m.done()
        _compile_and_check(mb, out, 40)

    def test_nested_calls_restore_sp(self):
        mb = ModuleBuilder("nest")
        out = mb.global_array("result", words=1)
        f = mb.function("inner", num_args=1)
        v = f.ireg()
        f.addi(v, f.arg(0), 1)
        f.ret(v)
        f.done()
        g = mb.function("outer", num_args=1)
        r1 = g.ireg()
        g.call("inner", args=[g.arg(0)], ret=r1)
        r2 = g.ireg()
        g.call("inner", args=[r1], ret=r2)
        g.ret(r2)
        g.done()
        m = mb.function("main", num_args=0)
        x = m.iconst(5)
        r = m.ireg()
        m.call("outer", args=[x], ret=r)
        addr = m.ireg()
        m.la(addr, "result")
        m.store(addr, r)
        m.halt()
        m.done()
        _compile_and_check(mb, out, 7)

    def test_float_argument_and_return(self):
        mb = ModuleBuilder("fargs")
        out = mb.global_array("result", words=1)
        f = mb.function("fsq", num_args=1)
        x = f.arg(0)
        xf = f.freg()
        f.i2f(xf, x)
        y = f.freg()
        f.fmpy(y, xf, xf)
        z = f.ireg()
        f.f2i(z, y)
        f.ret(z)
        f.done()
        m = mb.function("main", num_args=0)
        a = m.iconst(9)
        r = m.ireg()
        m.call("fsq", args=[a], ret=r)
        addr = m.ireg()
        m.la(addr, "result")
        m.store(addr, r)
        m.halt()
        m.done()
        _compile_and_check(mb, out, 81)

    def test_mutual_recursion(self):
        """is_even/is_odd via mutual calls — deep return-stack traffic."""
        mb = ModuleBuilder("mutual")
        out = mb.global_array("result", words=1)
        fe = mb.function("is_even", num_args=1)
        n = fe.arg(0)
        p = fe.preg()
        fe.cmpi_eq(p, n, 0)
        fe.br_if(p, "yes")
        n1 = fe.ireg()
        fe.subi(n1, n, 1)
        r = fe.ireg()
        fe.call("is_odd", args=[n1], ret=r)
        fe.ret(r)
        fe.label("yes")
        one = fe.iconst(1)
        fe.ret(one)
        fe.done()
        fo = mb.function("is_odd", num_args=1)
        n = fo.arg(0)
        p = fo.preg()
        fo.cmpi_eq(p, n, 0)
        fo.br_if(p, "no")
        n1 = fo.ireg()
        fo.subi(n1, n, 1)
        r = fo.ireg()
        fo.call("is_even", args=[n1], ret=r)
        fo.ret(r)
        fo.label("no")
        zero = fo.iconst(0)
        fo.ret(zero)
        fo.done()
        m = mb.function("main", num_args=0)
        x = m.iconst(11)
        r = m.ireg()
        m.call("is_even", args=[x], ret=r)
        addr = m.ireg()
        m.la(addr, "result")
        m.store(addr, r)
        m.halt()
        m.done()
        _compile_and_check(mb, out, 0)
