"""The static verifier: every rule proven both ways.

Each rule gets at least one negative test (a clean artifact yields no
diagnostics from that rule) and one positive test (a deliberately
corrupted or synthetic artifact makes exactly that rule fire).
Corruption always happens on deep copies — the fixtures are
session-scoped and shared.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze_encoding,
    analyze_image,
    analyze_suite,
    corrupt_branch_target,
    enforce_image,
    gate_enabled,
    analysis_env_problem,
)
from repro.analysis.verifier import RULES, rule as register_rule
from repro.errors import AnalysisError
from repro.isa.image import BasicBlockImage, ProgramImage
from repro.isa.multiop import MultiOp
from repro.isa.opcodes import Opcode
from repro.isa.operation import Operation
from repro.isa.registers import gpr, pred


def _mop(*ops):
    return MultiOp.of(list(ops))


def _block(bid, mops, *, fallthrough=None, function="main", label=None):
    return BasicBlockImage(
        block_id=bid,
        label=label or f"{function}/b{bid}",
        mops=tuple(mops),
        fallthrough=fallthrough,
        function=function,
    )


def _halt():
    return _mop(Operation(Opcode.HALT))


def _named(report, rule_name):
    return [d for d in report.diagnostics if d.rule == rule_name]


@pytest.fixture(scope="module")
def tiny_image(tiny_program):
    prog, _, _ = tiny_program
    return prog.image


@pytest.fixture(scope="module")
def call_image(call_program):
    prog, _ = call_program
    return prog.image


# ---------------------------------------------------------- clean images
def test_clean_images_produce_no_diagnostics(tiny_image, call_image):
    for image in (tiny_image, call_image):
        report = analyze_image(image)
        assert report.diagnostics == []
        assert report.total_checked > 0
        # every machine rule examined at least one subject somewhere
    combined = analyze_image(call_image)
    for name, r in RULES.items():
        if r.kind == "machine" and name != "op-roundtrip":
            assert combined.checked.get(name, 0) > 0, name


# -------------------------------------------------------- block-structure
def test_block_structure_clean(tiny_image):
    assert _named(analyze_image(tiny_image), "block-structure") == []


def test_block_structure_missing_fallthrough():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [_mop(Operation(Opcode.BR, target_block=1,
                                predicate=pred(1)))],
                fallthrough=None,  # conditional BR must fall through
            ),
            _block(1, [_halt()]),
        ],
    )
    diags = _named(analyze_image(image), "block-structure")
    assert any("no fallthrough" in d.message for d in diags)
    assert all(d.severity is Severity.ERROR for d in diags)


def test_block_structure_stale_fallthrough_is_lint():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [_mop(Operation(Opcode.BR, target_block=1))],
                fallthrough=1,  # unconditional BR never falls through
            ),
            _block(1, [_halt()]),
        ],
    )
    diags = _named(analyze_image(image), "block-structure")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING
    assert "unreachable past terminator" in diags[0].message


def test_block_structure_fallthrough_must_be_next_block():
    image = ProgramImage(
        "synth",
        [
            _block(0, [_mop(Operation(Opcode.LDI, dest=gpr(1), imm=1))],
                   fallthrough=2),
            _block(1, [_halt()]),
            _block(2, [_halt()]),
        ],
    )
    diags = _named(analyze_image(image), "block-structure")
    assert any("not the textually-next" in d.message for d in diags)


def test_block_structure_catches_mismatched_ids(tiny_image):
    image = copy.deepcopy(tiny_image)
    image.blocks[1].block_id = 40  # bit rot after construction
    diags = _named(analyze_image(image), "block-structure")
    assert any("does not match layout index" in d.message for d in diags)


def test_block_structure_control_before_final_group():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(Operation(Opcode.BR, target_block=1)),
                    _mop(Operation(Opcode.LDI, dest=gpr(1), imm=1)),
                ],
                fallthrough=1,
            ),
            _block(1, [_halt()]),
        ],
    )
    diags = _named(analyze_image(image), "block-structure")
    assert any("before the final" in d.message for d in diags)


# ---------------------------------------------------------- branch-target
def test_branch_target_clean(call_image):
    assert _named(analyze_image(call_image), "branch-target") == []


def test_branch_target_out_of_range(tiny_image):
    corrupted = corrupt_branch_target(tiny_image)
    report = analyze_image(corrupted)
    diags = _named(report, "branch-target")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "not a block id" in diags[0].message
    assert not report.ok()


def test_branch_target_escaping_its_function(call_image):
    image = copy.deepcopy(call_image)
    functions = {b.function for b in image}
    assert len(functions) >= 2
    br = next(
        (b, op)
        for b in image
        for op in b.ops
        if op.opcode is Opcode.BR
    )
    block, op = br
    other = next(
        b.block_id for b in image if b.function != block.function
    )
    op.target_block = other
    diags = _named(analyze_image(image), "branch-target")
    assert any("escapes" in d.message for d in diags)


def test_call_target_must_be_a_function_entry(call_image):
    from repro.analysis import function_entries

    image = copy.deepcopy(call_image)
    entries = set(function_entries(image).values())
    call_op = next(
        op for b in image for op in b.ops if op.opcode is Opcode.CALL
    )
    non_entry = next(
        b.block_id for b in image if b.block_id not in entries
    )
    call_op.target_block = non_entry
    diags = _named(analyze_image(image), "branch-target")
    assert any("not a function entry" in d.message for d in diags)


# ----------------------------------------------------- multiop-discipline
def test_multiop_discipline_clean(tiny_image):
    assert _named(analyze_image(tiny_image), "multiop-discipline") == []


def test_multiop_discipline_catches_flipped_tail_bit(tiny_image):
    image = copy.deepcopy(tiny_image)
    image.blocks[0].mops[0].ops[-1].tail = False
    diags = _named(analyze_image(image), "multiop-discipline")
    assert any("tail=" in d.message for d in diags)
    assert all(d.severity is Severity.ERROR for d in diags)


# ------------------------------------------------------------ vliw-hazard
def test_vliw_hazard_clean_on_scheduled_code(tiny_image):
    # The scheduler never packs same-cycle dependent ops, so compiled
    # images are hazard-free by construction.
    assert _named(analyze_image(tiny_image), "vliw-hazard") == []


def test_vliw_hazard_raw_is_warning():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(
                        Operation(Opcode.LDI, dest=gpr(1), imm=1),
                        Operation(Opcode.ADD, dest=gpr(2),
                                  src1=gpr(1), src2=gpr(31)),
                    ),
                    _halt(),
                ],
            )
        ],
    )
    diags = _named(analyze_image(image), "vliw-hazard")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING
    assert "reads r1" in diags[0].message


def test_vliw_hazard_multi_control_is_error():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(
                        Operation(Opcode.BR, target_block=1),
                        Operation(Opcode.BR, target_block=2,
                                  predicate=pred(1)),
                    )
                ],
                fallthrough=1,
            ),
            _block(1, [_halt()]),
            _block(2, [_halt()]),
        ],
    )
    diags = _named(analyze_image(image), "vliw-hazard")
    assert any(d.severity is Severity.ERROR for d in diags)
    assert any("transfer control" in d.message for d in diags)


# ----------------------------------------------------- reg-def-before-use
def test_def_before_use_clean(tiny_image, call_image):
    for image in (tiny_image, call_image):
        assert _named(analyze_image(image), "reg-def-before-use") == []


def test_def_before_use_flags_uninitialized_reads():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(Operation(Opcode.ADD, dest=gpr(1),
                                   src1=gpr(5), src2=gpr(6))),
                    _halt(),
                ],
            )
        ],
    )
    diags = _named(analyze_image(image), "reg-def-before-use")
    assert len(diags) == 2  # r5 and r6
    assert all(d.severity is Severity.WARNING for d in diags)


def test_def_before_use_accepts_seeded_stack_pointer():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(Operation(Opcode.ADD, dest=gpr(1),
                                   src1=gpr(31), src2=gpr(31))),
                    _halt(),
                ],
            )
        ],
    )
    assert _named(analyze_image(image), "reg-def-before-use") == []


def test_def_before_use_requires_assignment_on_every_path():
    # Diamond: only one arm assigns r5; the join reads it.
    cond = _mop(
        Operation(Opcode.CMPP_LT, dest=pred(1), src1=gpr(31),
                  src2=gpr(31)),
    )
    image = ProgramImage(
        "synth",
        [
            _block(0, [cond, _mop(Operation(Opcode.BR, target_block=2,
                                            predicate=pred(1)))],
                   fallthrough=1),
            _block(1, [_mop(Operation(Opcode.LDI, dest=gpr(5), imm=1)),
                       _mop(Operation(Opcode.BR, target_block=3))]),
            _block(2, [_mop(Operation(Opcode.LDI, dest=gpr(6), imm=2))],
                   fallthrough=3),
            _block(3, [_mop(Operation(Opcode.ADD, dest=gpr(7),
                                      src1=gpr(5), src2=gpr(5))),
                       _halt()]),
        ],
    )
    diags = _named(analyze_image(image), "reg-def-before-use")
    assert {d.block_id for d in diags} == {3}
    assert all("r5" in d.message for d in diags)


# --------------------------------------------------------- predicate-guard
def test_predicate_guard_clean(tiny_image):
    assert _named(analyze_image(tiny_image), "predicate-guard") == []


def test_predicate_guard_flags_undefined_guards():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(Operation(Opcode.LDI, dest=gpr(1), imm=1,
                                   predicate=pred(2))),
                    _halt(),
                ],
            )
        ],
    )
    diags = _named(analyze_image(image), "predicate-guard")
    assert len(diags) == 1
    assert "p2" in diags[0].message


def test_predicate_guard_sees_compares_earlier_in_the_block():
    image = ProgramImage(
        "synth",
        [
            _block(
                0,
                [
                    _mop(Operation(Opcode.CMPP_LT, dest=pred(2),
                                   src1=gpr(31), src2=gpr(31))),
                    _mop(Operation(Opcode.LDI, dest=gpr(1), imm=1,
                                   predicate=pred(2))),
                    _halt(),
                ],
            )
        ],
    )
    assert _named(analyze_image(image), "predicate-guard") == []


# -------------------------------------------------------- unreachable-block
def test_unreachable_block_clean(tiny_image):
    assert _named(analyze_image(tiny_image), "unreachable-block") == []


def test_unreachable_block_is_linted():
    image = ProgramImage(
        "synth",
        [
            _block(0, [_mop(Operation(Opcode.BR, target_block=2))]),
            _block(1, [_halt()]),  # nothing reaches this
            _block(2, [_halt()]),
        ],
    )
    diags = _named(analyze_image(image), "unreachable-block")
    assert len(diags) == 1
    assert diags[0].block_id == 1
    assert diags[0].severity is Severity.WARNING


# ------------------------------------------------------------ op-roundtrip
def test_op_roundtrip_clean(tiny_image):
    assert _named(analyze_image(tiny_image), "op-roundtrip") == []


def test_op_roundtrip_catches_unencodable_fields(tiny_image):
    image = copy.deepcopy(tiny_image)
    ldi = next(
        op for b in image for op in b.ops if op.opcode is Opcode.LDI
    )
    ldi.imm = 1 << 30  # overflows the 20-bit field; encode masks it
    diags = _named(analyze_image(image), "op-roundtrip")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR


# -------------------------------------------------------- scheme-roundtrip
def _byte_compressed(image):
    from repro.compression.schemes import ByteHuffmanScheme

    return ByteHuffmanScheme().compress(copy.deepcopy(image))


def test_scheme_roundtrip_clean(tiny_image):
    report = analyze_encoding(_byte_compressed(tiny_image))
    assert _named(report, "scheme-roundtrip") == []


def test_scheme_roundtrip_catches_corrupted_payloads(tiny_image):
    compressed = _byte_compressed(tiny_image)
    original = compressed.block_payloads[0]
    compressed.block_payloads[0] = bytes(len(original))
    report = analyze_encoding(compressed)
    diags = _named(report, "scheme-roundtrip")
    assert diags and all(
        d.severity is Severity.ERROR for d in diags
    )


# ------------------------------------------------------- codebook-coverage
def test_codebook_coverage_clean(tiny_image):
    report = analyze_encoding(_byte_compressed(tiny_image))
    assert _named(report, "codebook-coverage") == []


def test_codebook_coverage_catches_missing_symbols(tiny_image):
    from repro.compression.schemes import FullOpHuffmanScheme

    compressed = FullOpHuffmanScheme().compress(
        copy.deepcopy(tiny_image)
    )
    emitted = compressed.image.blocks[0].ops[0].encode()
    del compressed.streams[0].code.codes[emitted]
    report = analyze_encoding(
        compressed, names=["codebook-coverage"]
    )
    diags = _named(report, "codebook-coverage")
    assert any("absent from its dictionary" in d.message for d in diags)


# -------------------------------------------------------- tailored-widths
def test_tailored_widths_clean(tiny_image):
    from repro.tailored.encoding import tailor_image

    report = analyze_encoding(
        tailor_image(copy.deepcopy(tiny_image)),
        names=["tailored-widths"],
    )
    assert _named(report, "tailored-widths") == []


def test_tailored_widths_catch_out_of_range_values(tiny_image):
    from repro.tailored.encoding import tailor_image

    compressed = tailor_image(copy.deepcopy(tiny_image))
    ldi = next(
        op
        for b in compressed.image
        for op in b.ops
        if op.opcode is Opcode.LDI
    )
    ldi.imm = (1 << 19) - 1  # far outside the observed (tailored) range
    report = analyze_encoding(compressed, names=["tailored-widths"])
    diags = _named(report, "tailored-widths")
    assert any("does not fit its tailored" in d.message for d in diags)


def test_tailored_widths_catch_unmapped_opcodes(tiny_image):
    from repro.tailored.encoding import tailor_image

    compressed = tailor_image(copy.deepcopy(tiny_image))
    spec = compressed.spec
    unused = next(
        opc for opc in Opcode if opc not in spec.opcode_selector
    )
    victim = compressed.image.blocks[0].mops[0].ops[0]
    victim.opcode = unused
    report = analyze_encoding(compressed, names=["tailored-widths"])
    diags = _named(report, "tailored-widths")
    assert any("no selector" in d.message for d in diags)


# ----------------------------------------------------------- att-coverage
def _scaled_geometry():
    from repro.fetch.config import COMPRESSED_CACHE_SCALED

    return COMPRESSED_CACHE_SCALED


def test_att_coverage_clean(tiny_image):
    report = analyze_encoding(
        _byte_compressed(tiny_image), geometry=_scaled_geometry()
    )
    assert _named(report, "att-coverage") == []
    assert report.checked["att-coverage"] == len(tiny_image)


def test_att_coverage_skipped_without_a_geometry(tiny_image):
    report = analyze_encoding(_byte_compressed(tiny_image))
    assert report.checked.get("att-coverage", 0) == 0


def test_att_coverage_catches_broken_offset_chains(tiny_image):
    compressed = _byte_compressed(tiny_image)
    compressed.block_offsets[1] += 1
    report = analyze_encoding(
        compressed, geometry=_scaled_geometry(),
        names=["att-coverage"],
    )
    diags = _named(report, "att-coverage")
    assert any("breaks the chain" in d.message for d in diags)


# ----------------------------------------------------- reports and registry
def test_report_json_roundtrips(tiny_image):
    report = analyze_image(corrupt_branch_target(tiny_image))
    payload = json.loads(json.dumps(report.to_json()))
    assert AnalysisReport.from_json(payload) == report
    assert payload["errors"] == 1


def test_diagnostic_json_roundtrips():
    diag = Diagnostic(
        rule="branch-target",
        severity=Severity.ERROR,
        program="compress",
        message="boom",
        scheme="byte",
        block="main/loop",
        block_id=3,
        op_index=7,
        hint="fix it",
    )
    assert Diagnostic.from_json(diag.to_json()) == diag
    assert "main/loop" in diag.render()


def test_severity_ordering_and_parse():
    assert Severity.ERROR.at_least(Severity.WARNING)
    assert not Severity.INFO.at_least(Severity.WARNING)
    assert Severity.parse("warning") is Severity.WARNING
    with pytest.raises(AnalysisError):
        Severity.parse("fatal")


def test_report_merge_accumulates(tiny_image):
    a = analyze_image(tiny_image, program="one")
    b = analyze_image(corrupt_branch_target(tiny_image), program="two")
    total = a.total_checked + b.total_checked
    a.merge(b)
    assert a.programs == ["one", "two"]
    assert a.total_checked == total
    assert not a.ok()


def test_diagnostics_sort_most_severe_first(tiny_image):
    image = copy.deepcopy(corrupt_branch_target(tiny_image))
    # Add a warning-tier problem alongside the injected error.
    image.blocks[0].mops[0].ops[0].predicate = pred(9)
    report = analyze_image(image)
    assert report.diagnostics[0].severity is Severity.ERROR


def test_rule_registry_rejects_duplicates_and_bad_kinds():
    with pytest.raises(AnalysisError):
        register_rule(
            "branch-target", kind="machine", description="dup"
        )(lambda ctx: None)
    with pytest.raises(AnalysisError):
        register_rule("x", kind="nonsense", description="bad")(
            lambda ctx: None
        )


def test_crashing_rule_becomes_a_diagnostic(tiny_image):
    @register_rule(
        "crash-probe", kind="machine", description="always raises"
    )
    def _crash(ctx):
        raise RuntimeError("kaboom")

    try:
        report = analyze_image(tiny_image, names=["crash-probe"])
    finally:
        RULES.pop("crash-probe")
    diags = _named(report, "rule-crash")
    assert len(diags) == 1
    assert "kaboom" in diags[0].message
    assert not report.ok()


def test_analyze_suite_rejects_unknown_benchmarks():
    with pytest.raises(AnalysisError):
        analyze_suite(["not-a-benchmark"])


# ------------------------------------------------------------------ gate
def test_enforce_image_raises_only_on_errors(tiny_image):
    enforce_image(tiny_image)  # clean: no exception
    with pytest.raises(AnalysisError) as excinfo:
        enforce_image(corrupt_branch_target(tiny_image))
    assert "branch-target" in str(excinfo.value)


def test_gate_environment_parsing():
    assert not gate_enabled({})
    assert gate_enabled({"REPRO_ANALYZE": "1"})
    assert gate_enabled({"REPRO_ANALYZE": "Yes"})
    assert not gate_enabled({"REPRO_ANALYZE": "0"})
    assert analysis_env_problem({}) is None
    assert analysis_env_problem({"REPRO_ANALYZE": "on"}) is None
    problem = analysis_env_problem({"REPRO_ANALYZE": "maybe"})
    assert problem and "REPRO_ANALYZE" in problem


def test_study_gate_verifies_after_compile(monkeypatch):
    from repro.core.study import ProgramStudy

    monkeypatch.setenv("REPRO_ANALYZE", "1")
    study = ProgramStudy("compress", scale=2)
    assert study.compiled.image.total_ops > 0  # gate passes silently
