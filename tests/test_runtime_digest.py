"""Cache-key correctness: digests are deterministic and discriminating."""

import os
import subprocess
import sys

import pytest

from repro.fetch.config import FetchConfig
from repro.runtime.fingerprint import (
    artifact_digest,
    fetch_config_token,
    reset_fingerprint_cache,
    source_fingerprint,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


class TestDigestDiscrimination:
    def test_same_inputs_same_digest(self):
        a = artifact_digest("compile", benchmark="go", scale=3)
        b = artifact_digest("compile", benchmark="go", scale=3)
        assert a == b

    def test_stage_changes_digest(self):
        a = artifact_digest("compile", benchmark="go", scale=3)
        b = artifact_digest("trace", benchmark="go", scale=3)
        assert a != b

    def test_benchmark_changes_digest(self):
        a = artifact_digest("compile", benchmark="go", scale=3)
        b = artifact_digest("compile", benchmark="li", scale=3)
        assert a != b

    def test_scale_bump_changes_digest(self):
        a = artifact_digest("compile", benchmark="go", scale=3)
        b = artifact_digest("compile", benchmark="go", scale=4)
        assert a != b

    def test_scheme_bump_changes_digest(self):
        a = artifact_digest(
            "compress", benchmark="go", scale=3, scheme="full"
        )
        b = artifact_digest(
            "compress", benchmark="go", scale=3, scheme="byte"
        )
        assert a != b

    def test_extra_config_changes_digest(self):
        a = artifact_digest(
            "fetch", benchmark="go", scale=3, scheme="compressed",
            extra={"scaled": True, "config": None},
        )
        b = artifact_digest(
            "fetch", benchmark="go", scale=3, scheme="compressed",
            extra={"scaled": False, "config": None},
        )
        assert a != b

    def test_source_fingerprint_bump_changes_digest(self):
        a = artifact_digest(
            "compile", benchmark="go", scale=3, fingerprint="f" * 64
        )
        b = artifact_digest(
            "compile", benchmark="go", scale=3, fingerprint="e" * 64
        )
        assert a != b


class TestSourceFingerprint:
    def test_deterministic_for_a_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        first = source_fingerprint(tmp_path)
        reset_fingerprint_cache()
        assert source_fingerprint(tmp_path) == first

    def test_editing_a_file_changes_fingerprint(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = source_fingerprint(tmp_path)
        reset_fingerprint_cache()
        (tmp_path / "a.py").write_text("x = 2\n")
        assert source_fingerprint(tmp_path) != before

    def test_adding_a_file_changes_fingerprint(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = source_fingerprint(tmp_path)
        reset_fingerprint_cache()
        (tmp_path / "b.py").write_text("y = 2\n")
        assert source_fingerprint(tmp_path) != before

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = source_fingerprint(tmp_path)
        reset_fingerprint_cache()
        (tmp_path / "notes.txt").write_text("irrelevant\n")
        assert source_fingerprint(tmp_path) == before

    def test_memoized_within_a_process(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        first = source_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        # stale by design until the cache is reset
        assert source_fingerprint(tmp_path) == first
        reset_fingerprint_cache()
        assert source_fingerprint(tmp_path) != first


class TestCrossProcess:
    """The digest must be a pure function of inputs + source tree."""

    def _digest_in_subprocess(self) -> str:
        code = (
            "from repro.runtime.fingerprint import artifact_digest;"
            "print(artifact_digest('compress', benchmark='go', scale=3,"
            " scheme='full', extra={'k': 1}))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        return out.stdout.strip()

    def test_two_processes_agree(self):
        first = self._digest_in_subprocess()
        second = self._digest_in_subprocess()
        assert first == second
        assert len(first) == 64 and int(first, 16) >= 0

    def test_subprocess_agrees_with_this_process(self):
        here = artifact_digest(
            "compress", benchmark="go", scale=3, scheme="full",
            extra={"k": 1},
        )
        assert here == self._digest_in_subprocess()


class TestFetchConfigToken:
    def test_none_is_none(self):
        assert fetch_config_token(None) is None

    def test_token_is_deterministic_across_instances(self):
        a = FetchConfig.for_scheme("compressed")
        b = FetchConfig.for_scheme("compressed")
        assert a is not b
        assert fetch_config_token(a) == fetch_config_token(b)

    def test_token_sees_field_changes(self):
        a = FetchConfig.for_scheme("compressed")
        b = FetchConfig.for_scheme("compressed", atb_entries=64)
        assert fetch_config_token(a) != fetch_config_token(b)

    def test_token_sees_cache_geometry(self):
        a = FetchConfig.for_scheme("compressed", scaled=False)
        b = FetchConfig.for_scheme("compressed", scaled=True)
        assert fetch_config_token(a) != fetch_config_token(b)

    def test_token_has_no_memory_addresses(self):
        token = fetch_config_token(FetchConfig.for_scheme("base"))
        assert "0x" not in token
