"""Unit and property tests for the bit-granular serialization layer."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer(self):
        w = BitWriter()
        assert len(w) == 0
        assert w.to_bytes() == b""
        assert w.to_int() == 0

    def test_single_bits(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(0, 1)
        w.write(1, 1)
        assert w.to_bitstring() == "101"
        assert w.to_bytes() == bytes([0b10100000])

    def test_msb_first_order(self):
        w = BitWriter()
        w.write(0b1101, 4)
        w.write(0b0010, 4)
        assert w.to_bytes() == bytes([0b11010010])

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 4)

    def test_zero_width_nonzero_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(1, 0)

    def test_zero_width_zero_value_ok(self):
        w = BitWriter()
        w.write(0, 0)
        assert len(w) == 0

    def test_align_to_byte(self):
        w = BitWriter()
        w.write(1, 3)
        pad = w.align_to_byte()
        assert pad == 5
        assert len(w) == 8
        assert w.align_to_byte() == 0

    def test_write_bits_string(self):
        w = BitWriter()
        w.write_bits("1100")
        assert w.to_bitstring() == "1100"

    def test_write_bits_invalid_char(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits("10x")


class TestBitReader:
    def test_round_trip_simple(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0xABC, 12)
        r = BitReader.from_writer(w)
        assert r.read(3) == 0b101
        assert r.read(12) == 0xABC
        assert r.remaining == 0

    def test_read_past_end_raises(self):
        r = BitReader(b"\xff", bit_length=4)
        r.read(4)
        with pytest.raises(EOFError):
            r.read(1)

    def test_bit_length_bound_checked(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", bit_length=9)

    def test_seek(self):
        w = BitWriter()
        w.write(0b11110000, 8)
        r = BitReader.from_writer(w)
        r.read(8)
        r.seek(4)
        assert r.read(4) == 0b0000
        with pytest.raises(ValueError):
            r.seek(99)

    def test_align_to_byte(self):
        r = BitReader(bytes([0b10100000, 0b11000000]))
        r.read(3)
        skipped = r.align_to_byte()
        assert skipped == 5
        assert r.read(2) == 0b11

    def test_read_zero_width(self):
        r = BitReader(b"\xff")
        assert r.read(0) == 0
        assert r.position == 0

    def test_cross_byte_read(self):
        w = BitWriter()
        w.write(0x1FFFF, 17)
        r = BitReader.from_writer(w)
        assert r.read(17) == 0x1FFFF


@given(
    st.lists(
        st.integers(min_value=1, max_value=48).flatmap(
            lambda width: st.tuples(
                st.integers(min_value=0, max_value=(1 << width) - 1),
                st.just(width),
            )
        ),
        max_size=60,
    )
)
def test_roundtrip_property(chunks):
    """Any sequence of (value, width) writes reads back identically."""
    w = BitWriter()
    for value, width in chunks:
        w.write(value, width)
    r = BitReader.from_writer(w)
    for value, width in chunks:
        assert r.read(width) == value
    assert r.remaining == 0


@given(st.binary(max_size=64))
def test_byte_roundtrip_property(data):
    """Writing bytes through 8-bit chunks reproduces them exactly."""
    w = BitWriter()
    for byte in data:
        w.write(byte, 8)
    assert w.to_bytes() == data
    r = BitReader.from_writer(w)
    assert bytes(r.read(8) for _ in data) == data
