"""Shared intra-MultiOp hazard analysis: units plus the pinning
regression required by the kernel refactor.

``_legacy_has_hazard``/``_legacy_needs_buffered`` below are verbatim
copies of the logic that used to live inline in
``repro.emulator.kernel`` — the pinning test holds the extracted
:mod:`repro.analysis.hazards` to identical classifications over every
MultiOp of the full benchmark suite, so the kernel's buffered-vs-direct
dispatch provably did not change.
"""

from __future__ import annotations

import pytest

from repro.analysis.hazards import (
    GUARD_RAW,
    LOAD_AFTER_STORE,
    MULTI_CONTROL,
    RAW,
    classify_hazards,
    control_transfer_count,
    has_hazard,
    needs_buffered_execution,
)
from repro.isa.opcodes import Opcode
from repro.isa.operation import Operation
from repro.isa.registers import fpr, gpr, pred
from repro.programs.suite import BENCHMARK_NAMES, compile_benchmark

_SCALE = 2


# ---------------------------------------------------- the pinned legacy
def _legacy_has_hazard(ops) -> bool:
    """Verbatim pre-extraction kernel logic (do not modernize)."""
    written: set = set()
    store_seen = False
    for op in ops:
        if op.opcode is Opcode.LD and store_seen:
            return True
        guard = op.guard
        if guard is not None and (guard.bank, guard.index) in written:
            return True
        for reg in op.reads:
            if (reg.bank, reg.index) in written:
                return True
        if op.dest is not None:
            written.add((op.dest.bank, op.dest.index))
        if op.opcode is Opcode.ST:
            store_seen = True
    return False


def _legacy_needs_buffered(ops) -> bool:
    n_control = sum(1 for op in ops if op.opcode.is_branch)
    return n_control > 1 or _legacy_has_hazard(ops)


@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_shared_hazards_pin_legacy_kernel_classification(bench_name):
    compiled = compile_benchmark(bench_name, _SCALE)
    groups = 0
    for block in compiled.image:
        for mop in block.mops:
            groups += 1
            ops = mop.ops
            assert has_hazard(ops) == _legacy_has_hazard(ops)
            assert needs_buffered_execution(ops) == (
                _legacy_needs_buffered(ops)
            )
            # classify_hazards is the exhaustive form of the boolean:
            # a non-control hazard exists iff has_hazard says so.
            kinds = [h.kind for h in classify_hazards(ops)]
            assert has_hazard(ops) == any(
                k != MULTI_CONTROL for k in kinds
            )
            assert (control_transfer_count(ops) > 1) == (
                MULTI_CONTROL in kinds
            )
    assert groups > 0


# ------------------------------------------------------------------ units
def test_raw_within_group_is_a_hazard():
    ops = (
        Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3)),
        Operation(Opcode.ADD, dest=gpr(4), src1=gpr(1), src2=gpr(5)),
    )
    assert has_hazard(ops)
    (hazard,) = classify_hazards(ops)
    assert hazard.kind == RAW
    assert (hazard.earlier, hazard.later) == (0, 1)
    assert "r1" in hazard.what


def test_war_and_waw_are_not_hazards():
    # Read-then-write of the same register (WAR) and two writes (WAW)
    # never make in-order execution diverge: reads happen up front.
    war = (
        Operation(Opcode.ADD, dest=gpr(4), src1=gpr(1), src2=gpr(2)),
        Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3)),
    )
    waw = (
        Operation(Opcode.LDI, dest=gpr(7), imm=1),
        Operation(Opcode.LDI, dest=gpr(7), imm=2),
    )
    assert not has_hazard(war)
    assert not has_hazard(waw)
    assert classify_hazards(war) == ()
    assert classify_hazards(waw) == ()


def test_guard_written_in_group_is_a_hazard():
    ops = (
        Operation(Opcode.CMPP_LT, dest=pred(1), src1=gpr(1), src2=gpr(2)),
        Operation(
            Opcode.ADD,
            dest=gpr(3),
            src1=gpr(4),
            src2=gpr(5),
            predicate=pred(1),
        ),
    )
    assert has_hazard(ops)
    (hazard,) = classify_hazards(ops)
    assert hazard.kind == GUARD_RAW


def test_p0_guard_is_never_a_hazard():
    # p0 is hard-wired true; a compare "writing" it cannot change any
    # later op's guard.
    ops = (
        Operation(Opcode.CMPP_LT, dest=pred(0), src1=gpr(1), src2=gpr(2)),
        Operation(
            Opcode.ADD,
            dest=gpr(3),
            src1=gpr(4),
            src2=gpr(5),
            predicate=pred(0),
        ),
    )
    assert not has_hazard(ops)


def test_load_after_store_is_a_hazard_but_not_the_reverse():
    st_then_ld = (
        Operation(Opcode.ST, src1=gpr(1), src2=gpr(2)),
        Operation(Opcode.LD, dest=gpr(3), src1=gpr(4)),
    )
    ld_then_st = (
        Operation(Opcode.LD, dest=gpr(3), src1=gpr(4)),
        Operation(Opcode.ST, src1=gpr(1), src2=gpr(2)),
    )
    assert has_hazard(st_then_ld)
    (hazard,) = classify_hazards(st_then_ld)
    assert hazard.kind == LOAD_AFTER_STORE
    assert not has_hazard(ld_then_st)


def test_multiple_control_transfers_need_buffering_without_hazard():
    ops = (
        Operation(Opcode.BR, target_block=1),
        Operation(Opcode.BR, target_block=2, predicate=pred(1)),
    )
    assert not has_hazard(ops)
    assert control_transfer_count(ops) == 2
    assert needs_buffered_execution(ops)
    (hazard,) = classify_hazards(ops)
    assert hazard.kind == MULTI_CONTROL


def test_classifier_reports_every_conflict_in_scan_order():
    ops = (
        Operation(Opcode.ST, src1=gpr(1), src2=gpr(2)),
        Operation(Opcode.LDI, dest=gpr(5), imm=7),
        Operation(Opcode.LD, dest=gpr(6), src1=gpr(5)),
    )
    kinds = [h.kind for h in classify_hazards(ops)]
    assert kinds == [LOAD_AFTER_STORE, RAW]
    descriptions = [h.describe() for h in classify_hazards(ops)]
    assert any("loads after the store" in d for d in descriptions)


def test_fpr_and_gpr_banks_do_not_alias():
    ops = (
        Operation(Opcode.FADD, dest=fpr(1), src1=fpr(2), src2=fpr(3)),
        Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3)),
    )
    assert not has_hazard(ops)
