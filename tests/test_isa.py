"""Tests for the TEPIC ISA layer: formats (Table 2), operations, MOPs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import (
    FORMATS,
    MultiOp,
    OP_BITS,
    Opcode,
    Operation,
    OpType,
)
from repro.isa.formats import (
    BRANCH_FORMAT,
    COMMON_PREFIX,
    FP_FORMAT,
    INT_ALU_FORMAT,
    INT_CMPP_FORMAT,
    LOAD_FORMAT,
    LOAD_IMM_FORMAT,
    STORE_FORMAT,
)
from repro.isa.multiop import ISSUE_WIDTH, MEMORY_UNITS
from repro.isa.opcodes import FormatName, lookup
from repro.isa.operation import IMM_MAX, IMM_MIN, NO_DEST, src_arity
from repro.isa.registers import (
    Register,
    RegisterBank,
    TRUE_PREDICATE,
    fpr,
    gpr,
    pred,
)


class TestRegisters:
    def test_str_and_parse_round_trip(self):
        for reg in (gpr(5), fpr(0), pred(31)):
            assert Register.parse(str(reg)) == reg

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            gpr(32)

    def test_parse_unknown_bank(self):
        with pytest.raises(ValueError):
            Register.parse("x3")

    def test_true_predicate_is_p0(self):
        assert TRUE_PREDICATE == pred(0)


class TestFormatsTable2:
    """The paper's Table 2, field by field."""

    def test_all_formats_are_40_bits(self):
        for fmt in FORMATS.values():
            assert fmt.total_bits == OP_BITS

    @pytest.mark.parametrize(
        "fmt,widths",
        [
            (INT_ALU_FORMAT, [1, 1, 2, 5, 5, 5, 2, 8, 5, 1, 5]),
            (INT_CMPP_FORMAT, [1, 1, 2, 5, 5, 5, 2, 3, 5, 5, 1, 5]),
            (LOAD_IMM_FORMAT, [1, 1, 2, 5, 20, 5, 1, 5]),
            (FP_FORMAT, [1, 1, 2, 5, 5, 5, 1, 6, 3, 5, 1, 5]),
            (LOAD_FORMAT, [1, 1, 2, 5, 5, 2, 2, 1, 2, 3, 5, 5, 1, 5]),
            (STORE_FORMAT, [1, 1, 2, 5, 5, 5, 2, 2, 11, 1, 5]),
            (BRANCH_FORMAT, [1, 1, 2, 5, 5, 5, 16, 5]),
        ],
    )
    def test_field_widths_match_paper(self, fmt, widths):
        assert [f.width for f in fmt.fields] == widths

    def test_common_prefix_shared_by_all_formats(self):
        for fmt in FORMATS.values():
            assert fmt.field_names[:4] == COMMON_PREFIX
            assert fmt.offset_of("opcode") == 4

    def test_encode_decode_fields(self):
        values = {"t": 1, "opt": 0, "opcode": 3, "src1": 7, "dest": 9}
        word = INT_ALU_FORMAT.encode(values)
        decoded = INT_ALU_FORMAT.decode(word)
        for key, val in values.items():
            assert decoded[key] == val
        assert decoded["res"] == 0

    def test_encode_rejects_unknown_field(self):
        with pytest.raises(EncodingError):
            INT_ALU_FORMAT.encode({"bogus": 1})

    def test_encode_rejects_oversized_value(self):
        with pytest.raises(EncodingError):
            INT_ALU_FORMAT.encode({"src1": 32})

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(DecodingError):
            INT_ALU_FORMAT.decode(1 << OP_BITS)


class TestOpcodes:
    def test_every_pair_unique(self):
        pairs = {(op.optype, op.code) for op in Opcode}
        assert len(pairs) == len(list(Opcode))

    def test_lookup_round_trip(self):
        for op in Opcode:
            assert lookup(op.optype.value, op.code) is op

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup(1, 31)

    def test_classification(self):
        assert Opcode.BR.is_branch
        assert Opcode.LD.is_load and Opcode.LD.is_memory
        assert Opcode.ST.is_store
        assert Opcode.CMPP_LT.is_compare
        assert Opcode.FADD.is_float
        assert not Opcode.ADD.is_memory


def _sample_operations():
    return [
        Operation(Opcode.ADD, dest=gpr(3), src1=gpr(1), src2=gpr(2)),
        Operation(Opcode.SUB, dest=gpr(0), src1=gpr(31), src2=gpr(30),
                  predicate=pred(5)),
        Operation(Opcode.LDI, dest=gpr(9), imm=IMM_MIN),
        Operation(Opcode.LDI, dest=gpr(9), imm=IMM_MAX),
        Operation(Opcode.CMPP_LT, dest=pred(7), src1=gpr(4), src2=gpr(5)),
        Operation(Opcode.MOV, dest=gpr(1), src1=gpr(2)),
        Operation(Opcode.FADD, dest=fpr(1), src1=fpr(2), src2=fpr(3)),
        Operation(Opcode.I2F, dest=fpr(0), src1=gpr(17)),
        Operation(Opcode.F2I, dest=gpr(8), src1=fpr(9)),
        Operation(Opcode.LD, dest=gpr(6), src1=gpr(7), bhwx=3),
        Operation(Opcode.ST, src1=gpr(7), src2=gpr(6), bhwx=0),
        Operation(Opcode.BR, target_block=0, predicate=pred(1)),
        Operation(Opcode.BR, target_block=65535),
        Operation(Opcode.CALL, target_block=42),
        Operation(Opcode.RET),
        Operation(Opcode.HALT, tail=True),
    ]


class TestOperation:
    @pytest.mark.parametrize("op", _sample_operations(),
                             ids=lambda o: o.opcode.name)
    def test_encode_decode_round_trip(self, op):
        word = op.encode()
        assert 0 <= word < (1 << OP_BITS)
        assert Operation.decode(word) == op

    def test_encode_bytes_is_five_bytes(self):
        op = Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3))
        assert len(op.encode_bytes()) == 5

    def test_ldi_requires_immediate(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.LDI, dest=gpr(1))

    def test_immediate_range_checked(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.LDI, dest=gpr(1), imm=IMM_MAX + 1)

    def test_non_ldi_rejects_immediate(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3),
                      imm=4)

    def test_branch_requires_target(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.BR)

    def test_target_must_fit_16_bits(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.BR, target_block=1 << 16)

    def test_predicate_bank_enforced(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3),
                      predicate=gpr(0))

    def test_dest_bank_enforced(self):
        with pytest.raises(EncodingError):
            Operation(Opcode.FADD, dest=gpr(1), src1=fpr(2), src2=fpr(3))

    def test_with_tail(self):
        op = Operation(Opcode.RET)
        tailed = op.with_tail(True)
        assert tailed.tail and not op.tail
        assert tailed.with_tail(True) is tailed

    def test_reads_writes(self):
        op = Operation(Opcode.ADD, dest=gpr(3), src1=gpr(1), src2=gpr(2))
        assert op.reads == (gpr(1), gpr(2))
        assert op.writes == (gpr(3),)

    def test_field_values_cover_all_architectural_fields(self):
        for op in _sample_operations():
            values = op.field_values()
            for f in op.format:
                if not f.reserved:
                    assert f.name in values

    def test_decode_unknown_opcode_raises(self):
        # OPT=FLOAT, OPCODE=31 is unassigned.
        word = (OpType.FLOAT.value << 36) | (31 << 31)
        with pytest.raises(DecodingError):
            Operation.decode(word)

    def test_arity_table(self):
        assert src_arity(Opcode.ADD) == 2
        assert src_arity(Opcode.MOV) == 1
        assert src_arity(Opcode.RET) == 0
        assert Opcode.ST in NO_DEST


@given(
    opcode=st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.XOR,
                            Opcode.SHL, Opcode.MIN]),
    d=st.integers(0, 31),
    a=st.integers(0, 31),
    b=st.integers(0, 31),
    p=st.integers(0, 31),
    tail=st.booleans(),
)
def test_alu_roundtrip_property(opcode, d, a, b, p, tail):
    op = Operation(opcode, dest=gpr(d), src1=gpr(a), src2=gpr(b),
                   predicate=pred(p), tail=tail)
    assert Operation.decode(op.encode()) == op


@given(imm=st.integers(IMM_MIN, IMM_MAX), d=st.integers(0, 31))
def test_ldi_roundtrip_property(imm, d):
    op = Operation(Opcode.LDI, dest=gpr(d), imm=imm)
    assert Operation.decode(op.encode()) == op


class TestMultiOp:
    def test_tail_bits_set_on_last_only(self):
        ops = [
            Operation(Opcode.ADD, dest=gpr(i), src1=gpr(0), src2=gpr(1))
            for i in range(3)
        ]
        mop = MultiOp.of(ops)
        assert [o.tail for o in mop.ops] == [False, False, True]

    def test_single_op_mop_has_tail(self):
        mop = MultiOp.of([Operation(Opcode.RET)])
        assert mop.ops[0].tail

    def test_empty_mop_rejected(self):
        with pytest.raises(EncodingError):
            MultiOp.of([])

    def test_issue_width_enforced(self):
        ops = [
            Operation(Opcode.ADD, dest=gpr(i), src1=gpr(0), src2=gpr(1))
            for i in range(ISSUE_WIDTH + 1)
        ]
        with pytest.raises(EncodingError):
            MultiOp.of(ops)

    def test_memory_unit_limit_enforced(self):
        ops = [
            Operation(Opcode.LD, dest=gpr(i), src1=gpr(0))
            for i in range(MEMORY_UNITS + 1)
        ]
        with pytest.raises(EncodingError):
            MultiOp.of(ops)

    def test_bit_length(self):
        ops = [Operation(Opcode.RET), Operation(Opcode.HALT)]
        assert MultiOp.of(ops).bit_length == 2 * OP_BITS

    def test_encode_words_tail_visible(self):
        mop = MultiOp.of([
            Operation(Opcode.ADD, dest=gpr(1), src1=gpr(2), src2=gpr(3)),
            Operation(Opcode.RET),
        ])
        words = mop.encode_words()
        assert words[0] >> (OP_BITS - 1) == 0
        assert words[1] >> (OP_BITS - 1) == 1
