"""Property-based differential testing of the whole toolchain.

Hypothesis generates random straight-line ALU programs; a direct Python
interpretation of the generated instruction list (using the shared
32-bit semantics) is compared against compiling — with and without
optimizations — and emulating.  Any disagreement anywhere in the
builder → passes → regalloc → lowering → scheduler → assembler →
emulator chain fails the property.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import ModuleBuilder, compile_module
from repro.emulator import run_image
from repro.isa.opcodes import Opcode
from repro.utils.arith import shift_amount, unsigned32, wrap32

NUM_REGS = 6

_BINOPS = {
    "add": (Opcode.ADD, lambda a, b: wrap32(a + b)),
    "sub": (Opcode.SUB, lambda a, b: wrap32(a - b)),
    "mpy": (Opcode.MPY, lambda a, b: wrap32(a * b)),
    "and": (Opcode.AND, lambda a, b: wrap32(a & b)),
    "or": (Opcode.OR, lambda a, b: wrap32(a | b)),
    "xor": (Opcode.XOR, lambda a, b: wrap32(a ^ b)),
    "shl": (Opcode.SHL, lambda a, b: wrap32(a << shift_amount(b))),
    "shr": (Opcode.SHR,
            lambda a, b: wrap32(unsigned32(a) >> shift_amount(b))),
    "sra": (Opcode.SRA, lambda a, b: wrap32(a >> shift_amount(b))),
    "min": (Opcode.MIN, min),
    "max": (Opcode.MAX, max),
}

instruction = st.tuples(
    st.sampled_from(sorted(_BINOPS)),
    st.integers(0, NUM_REGS - 1),  # dest
    st.integers(0, NUM_REGS - 1),  # src1
    st.integers(0, NUM_REGS - 1),  # src2
)

program_strategy = st.tuples(
    st.lists(
        st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1),
        min_size=NUM_REGS, max_size=NUM_REGS,
    ),
    st.lists(instruction, max_size=40),
)


def _interpret(seeds, instrs):
    regs = list(seeds)
    for name, d, a, b in instrs:
        _, fn = _BINOPS[name]
        regs[d] = fn(regs[a], regs[b])
    return wrap32(sum(regs))


def _build(seeds, instrs):
    mb = ModuleBuilder("rand")
    mb.global_array("result", words=1)
    builder = mb.function("main", num_args=0)
    regs = [builder.ireg() for _ in range(NUM_REGS)]
    for reg, seed in zip(regs, seeds):
        builder.li(reg, seed)
    for name, d, a, b in instrs:
        opcode, _ = _BINOPS[name]
        builder._binop(opcode, regs[d], regs[a], regs[b])
    total = builder.ireg()
    builder.li(total, 0)
    for reg in regs:
        builder.add(total, total, reg)
    addr = builder.ireg()
    builder.la(addr, "result")
    builder.store(addr, total)
    builder.halt()
    builder.done()
    return mb.build()


@settings(max_examples=40, deadline=None)
@given(program_strategy)
def test_random_programs_optimized(program):
    seeds, instrs = program
    module = _build(seeds, instrs)
    prog = compile_module(module, opt=True, hoist=True)
    result = run_image(prog.image, module.globals)
    address = module.globals["result"].address
    assert result.machine.load_word(address) == _interpret(seeds, instrs)


@settings(max_examples=25, deadline=None)
@given(program_strategy)
def test_random_programs_unoptimized(program):
    seeds, instrs = program
    module = _build(seeds, instrs)
    prog = compile_module(module, opt=False, hoist=False)
    result = run_image(prog.image, module.globals)
    address = module.globals["result"].address
    assert result.machine.load_word(address) == _interpret(seeds, instrs)


@settings(max_examples=20, deadline=None)
@given(program_strategy)
def test_random_programs_compress_roundtrip(program):
    """Every scheme decompresses random compiled images bit-exactly."""
    from repro.compression.schemes import (
        ByteHuffmanScheme,
        FullOpHuffmanScheme,
    )
    from repro.tailored.encoding import TailoredScheme

    seeds, instrs = program
    module = _build(seeds, instrs)
    image = compile_module(module).image
    for scheme in (ByteHuffmanScheme(), FullOpHuffmanScheme(),
                   TailoredScheme()):
        scheme.compress(image).verify()
