"""Tests for the task graph and the parallel scheduler."""

import pytest

from repro import runtime
from repro.core.study import clear_caches, study_for
from repro.errors import ConfigurationError, ReproError, SchedulerError
from repro.runtime.metrics import REPORT, reset_metrics
from repro.runtime.scheduler import execute_graph, prewarm
from repro.runtime.tasks import (
    TaskSpec,
    build_study_graph,
    compile_id,
    compress_id,
    fetch_id,
    topological_order,
    trace_id,
)


class TestGraphConstruction:
    def test_nodes_per_benchmark(self):
        graph = build_study_graph(
            ["compress"], scale=2, schemes=("full",),
            fetch_schemes=("compressed",),
        )
        assert set(graph) == {
            compile_id("compress", 2),
            trace_id("compress", 2),
            compress_id("compress", "full", 2),
            fetch_id("compress", "compressed", 2),
        }

    def test_fetch_depends_on_trace_and_its_image(self):
        graph = build_study_graph(
            ["go"], scale=2, fetch_schemes=("compressed",)
        )
        fetch = graph[fetch_id("go", "compressed", 2)]
        assert trace_id("go", 2) in fetch.deps
        # "Compressed" runs on the Full-op Huffman image
        assert compress_id("go", "full", 2) in fetch.deps

    def test_ideal_walks_the_uncompressed_image(self):
        graph = build_study_graph(["go"], scale=2, fetch_schemes=("ideal",))
        fetch = graph[fetch_id("go", "ideal", 2)]
        assert compress_id("go", "base", 2) in fetch.deps

    def test_image_nodes_are_added_implicitly_once(self):
        graph = build_study_graph(
            ["go"], scale=2, schemes=("full",),
            fetch_schemes=("compressed",),
        )
        compress_nodes = [
            t for t in graph.values() if t.stage == "compress"
        ]
        assert len(compress_nodes) == 1  # "full" not duplicated

    def test_benchmarks_are_independent(self):
        graph = build_study_graph(["compress", "go"], scale=2)
        for spec in graph.values():
            for dep in spec.deps:
                assert graph[dep].benchmark == spec.benchmark

    def test_unknown_fetch_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            build_study_graph(["go"], fetch_schemes=("warp",))

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("x", "paint", "go")


class TestTopologicalOrder:
    def test_dependencies_come_first(self):
        graph = build_study_graph(
            ["compress", "go"], scale=2, schemes=("full", "byte"),
            fetch_schemes=("compressed", "base"),
        )
        order = topological_order(graph)
        assert sorted(order) == sorted(graph)
        position = {task_id: i for i, task_id in enumerate(order)}
        for spec in graph.values():
            for dep in spec.deps:
                assert position[dep] < position[spec.task_id]

    def test_missing_dependency_rejected(self):
        graph = {"a": TaskSpec("a", "compile", "go", deps=("ghost",))}
        with pytest.raises(ConfigurationError):
            topological_order(graph)

    def test_cycle_rejected(self):
        graph = {
            "a": TaskSpec("a", "compile", "go", deps=("b",)),
            "b": TaskSpec("b", "trace", "go", deps=("a",)),
        }
        with pytest.raises(ConfigurationError):
            topological_order(graph)


@pytest.fixture
def fresh_cache(tmp_path):
    saved = runtime.runtime_config()
    clear_caches()
    runtime.configure(enabled=True, cache_dir=tmp_path / "cache")
    yield
    clear_caches()
    runtime.set_runtime_config(saved)


class TestExecution:
    def test_inline_execution_warms_the_store(self, fresh_cache):
        results = prewarm(
            ["compress"], scale=2, schemes=("full",),
            fetch_schemes=("compressed",), jobs=1,
        )
        assert all(r.ok for r in results)
        assert runtime.default_store().stats().entries >= 4

    def test_parallel_execution_fans_out(self, fresh_cache):
        results = prewarm(
            ["compress", "go"], scale=2, schemes=("full",),
            fetch_schemes=("compressed",), jobs=2,
        )
        assert all(r.ok for r in results)
        assert len(results) == 8  # 2 benchmarks × 4 stages
        # worker metrics were merged into the parent report
        assert runtime.REPORT.total_misses > 0
        # parent can now read everything back without recomputing
        clear_caches()
        study = study_for("compress", 2)
        study.compressed("full")
        study.fetch_metrics("compressed")
        assert runtime.REPORT.total_misses == 0

    def test_parallel_matches_inline(self, fresh_cache, tmp_path):
        results = prewarm(
            ["compress"], scale=2, schemes=("byte",),
            fetch_schemes=("base",), jobs=2,
        )
        assert all(r.ok for r in results)
        clear_caches()
        via_pool = study_for("compress", 2)
        pool_size = via_pool.compressed("byte").total_code_bytes
        pool_ipc = via_pool.fetch_metrics("base").ipc

        clear_caches()
        runtime.configure(enabled=False)
        direct = study_for("compress", 2)
        assert direct.compressed("byte").total_code_bytes == pool_size
        assert direct.fetch_metrics("base").ipc == pool_ipc

    def test_parallel_without_cache_is_rejected(self, fresh_cache):
        runtime.configure(enabled=False)
        graph = build_study_graph(["compress"], scale=2)
        with pytest.raises(ConfigurationError):
            execute_graph(graph, jobs=2)

    def test_failing_task_raises_with_task_id(self, fresh_cache):
        graph = {
            "bad": TaskSpec("bad", "compile", "no-such-benchmark", 2),
        }
        with pytest.raises(RuntimeError, match="bad"):
            execute_graph(graph, jobs=2)

    def test_failure_skips_dependents(self, fresh_cache):
        graph = {
            "bad": TaskSpec("bad", "compile", "no-such-benchmark", 2),
            "child": TaskSpec(
                "child", "trace", "no-such-benchmark", 2, deps=("bad",)
            ),
        }
        with pytest.raises(RuntimeError):
            execute_graph(graph, jobs=2)


class TestFailureSurfacing:
    """Regression: a worker failure must carry its real traceback home,
    not vanish into a bare 'task failed' message."""

    def test_pool_failure_surfaces_worker_traceback(self, fresh_cache):
        reset_metrics()
        graph = {
            "bad": TaskSpec("bad", "compile", "no-such-benchmark", 2),
        }
        with pytest.raises(SchedulerError) as excinfo:
            execute_graph(graph, jobs=2)
        message = str(excinfo.value)
        # The worker's formatted traceback rides home in the message.
        assert "Traceback" in message
        assert "no-such-benchmark" in message

    def test_pool_failure_recorded_in_runtime_report(self, fresh_cache):
        reset_metrics()
        graph = {
            "bad": TaskSpec("bad", "compile", "no-such-benchmark", 2),
        }
        with pytest.raises(SchedulerError):
            execute_graph(graph, jobs=2)
        assert REPORT.stage("compile").errors == 1
        assert REPORT.total_errors == 1
        failure = REPORT.failures[0]
        assert failure["stage"] == "compile"
        assert failure["task_id"] == "bad"
        assert "Traceback" in failure["error"]
        assert REPORT.to_json()["totals"]["errors"] == 1

    def test_inline_failure_chains_the_original_exception(
        self, fresh_cache
    ):
        reset_metrics()
        graph = {
            "bad": TaskSpec("bad", "compile", "no-such-benchmark", 2),
        }
        with pytest.raises(SchedulerError) as excinfo:
            execute_graph(graph, jobs=1)
        assert isinstance(excinfo.value.__cause__, ConfigurationError)
        assert REPORT.stage("compile").errors == 1
        assert "bad" in str(excinfo.value)

    def test_scheduler_error_is_both_repro_and_runtime_error(self):
        # Callers that predate the dedicated class catch RuntimeError.
        assert issubclass(SchedulerError, ReproError)
        assert issubclass(SchedulerError, RuntimeError)

    def test_worker_failures_merge_across_processes(self, fresh_cache):
        reset_metrics()
        graph = {
            "bad-1": TaskSpec("bad-1", "compile", "no-such-benchmark", 2),
            "bad-2": TaskSpec("bad-2", "trace", "also-missing", 2),
        }
        with pytest.raises(SchedulerError, match="2 task"):
            execute_graph(graph, jobs=2)
        assert REPORT.total_errors == 2
        assert {f["stage"] for f in REPORT.failures} == {
            "compile", "trace",
        }