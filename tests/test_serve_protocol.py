"""Wire-level tests for the serve framing protocol (no daemon).

Everything here runs over a ``socket.socketpair``: one side writes
crafted bytes, the other decodes them with the production
``recv_frame``.  The contract being pinned: every malformed input maps
to a *typed* :class:`~repro.errors.ProtocolError` (with the documented
machine-readable code), a clean EOF between frames is ``None``, and a
well-formed frame round-trips exactly.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.errors import ProtocolError
from repro.serve import protocol


def _pair():
    left, right = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def _deliver(blob: bytes):
    """Write raw bytes, close the writer, return the reader socket."""
    writer, reader = _pair()
    writer.sendall(blob)
    writer.close()
    return reader


def test_round_trip():
    message = {"request_id": "r1", "kind": "ping", "params": {"x": 1}}
    reader = _deliver(protocol.encode_frame(message))
    try:
        assert protocol.recv_frame(reader) == message
        # After the one frame, the closed writer is a clean EOF.
        assert protocol.recv_frame(reader) is None
    finally:
        reader.close()


def test_header_layout():
    frame = protocol.encode_frame({"a": 1})
    assert frame[:4] == protocol.MAGIC
    assert frame[4] == protocol.PROTOCOL_VERSION
    body = frame[protocol.HEADER.size:]
    assert int.from_bytes(frame[5:9], "big") == len(body)
    assert json.loads(body.decode("utf-8")) == {"a": 1}


def test_clean_eof_between_frames():
    writer, reader = _pair()
    writer.close()
    try:
        assert protocol.recv_frame(reader) is None
    finally:
        reader.close()


@pytest.mark.parametrize("cut", ["header", "body"])
def test_truncated_frame(cut):
    frame = protocol.encode_frame({"request_id": "r", "kind": "ping"})
    cut_at = 5 if cut == "header" else protocol.HEADER.size + 3
    reader = _deliver(frame[:cut_at])
    try:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.recv_frame(reader)
        assert excinfo.value.code == "truncated-frame"
    finally:
        reader.close()


def test_bad_magic():
    frame = protocol.encode_frame({"a": 1})
    reader = _deliver(b"EVIL" + frame[4:])
    try:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.recv_frame(reader)
        assert excinfo.value.code == "bad-magic"
    finally:
        reader.close()


def test_version_mismatch():
    body = b"{}"
    reader = _deliver(
        protocol.HEADER.pack(protocol.MAGIC, 99, len(body)) + body
    )
    try:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.recv_frame(reader)
        assert excinfo.value.code == "version-mismatch"
    finally:
        reader.close()


def test_oversized_declared_length_rejected_before_body_read():
    # Only the header arrives; the declared length alone must trigger
    # the rejection (no attempt to allocate/read the claimed body).
    reader = _deliver(
        protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, 1024 + 1
        )
    )
    try:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.recv_frame(reader, max_frame_bytes=1024)
        assert excinfo.value.code == "frame-too-large"
    finally:
        reader.close()


def test_oversized_outgoing_frame_rejected():
    with pytest.raises(ProtocolError) as excinfo:
        protocol.encode_frame(
            {"blob": "x" * 2048}, max_frame_bytes=1024
        )
    assert excinfo.value.code == "frame-too-large"


def test_garbage_body_is_bad_json():
    blob = b"\x00\xff not json at all"
    reader = _deliver(
        protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, len(blob)
        )
        + blob
    )
    try:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.recv_frame(reader)
        assert excinfo.value.code == "bad-json"
    finally:
        reader.close()


def test_non_object_body_is_bad_request():
    blob = b"[1,2,3]"
    reader = _deliver(
        protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, len(blob)
        )
        + blob
    )
    try:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.recv_frame(reader)
        assert excinfo.value.code == "bad-request"
    finally:
        reader.close()


class TestValidateRequest:
    def test_valid(self):
        assert protocol.validate_request(
            {"request_id": "r", "kind": "study", "params": {"b": 1}}
        ) == ("r", "study", {"b": 1})

    def test_params_default_to_empty(self):
        _, _, params = protocol.validate_request(
            {"request_id": "r", "kind": "ping"}
        )
        assert params == {}

    @pytest.mark.parametrize(
        "message, code",
        [
            ({"kind": "ping"}, "bad-request"),
            ({"request_id": "", "kind": "ping"}, "bad-request"),
            ({"request_id": 7, "kind": "ping"}, "bad-request"),
            ({"request_id": "r"}, "bad-request"),
            ({"request_id": "r", "kind": 3}, "bad-request"),
            ({"request_id": "r", "kind": "frobnicate"}, "unknown-kind"),
            (
                {"request_id": "r", "kind": "ping", "params": [1]},
                "bad-request",
            ),
        ],
    )
    def test_rejects(self, message, code):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request(message)
        assert excinfo.value.code == code


def test_recoverable_codes_keep_stream_sync_semantics():
    # The recoverable set is exactly the codes raised *after* a whole
    # frame was consumed; framing-level failures must not be in it.
    assert protocol.RECOVERABLE_CODES == {
        "bad-json", "bad-request", "unknown-kind", "bad-params"
    }
    for framing_code in (
        "bad-magic", "version-mismatch", "frame-too-large",
        "truncated-frame",
    ):
        assert framing_code not in protocol.RECOVERABLE_CODES


def test_response_constructors():
    ok = protocol.make_ok(
        "r", {"v": 1}, metrics={"stages": {}}, dedup={"shared": False}
    )
    assert ok["status"] == "ok" and ok["result"] == {"v": 1}
    assert ok["metrics"] == {"stages": {}}
    err = protocol.make_error("r", "bad-params", "nope")
    assert err["status"] == "error"
    assert err["error"] == {"type": "bad-params", "message": "nope"}
    busy = protocol.make_busy("r", "full", 0.25)
    assert busy["status"] == "busy"
    assert busy["retry_after"] == 0.25
