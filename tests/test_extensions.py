"""Tests for the future-work extensions: dictionary scheme, gshare."""

import pytest
from hypothesis import given, strategies as st

from repro.compression.dictionary import (
    DictionaryImage,
    DictionaryScheme,
    MAX_SEQ,
    MIN_SEQ,
)
from repro.compression.schemes import BaselineScheme
from repro.errors import CompressionError, ConfigurationError
from repro.fetch.branch_predict import (
    BlockMeta,
    BlockPredictor,
    GshareUnit,
    KIND_COND_BRANCH,
    KIND_FALLTHROUGH,
    KIND_HALT,
    KIND_JUMP,
    KIND_RET,
)
from repro.fetch.config import FetchConfig
from repro.fetch.engine import simulate_fetch


@pytest.fixture(scope="module")
def image(tiny_program):
    return tiny_program[0].image


class TestDictionaryScheme:
    def test_roundtrip(self, image):
        compressed = DictionaryScheme().compress(image)
        compressed.verify()

    def test_compresses_repetitive_code(self, compress_study):
        compressed = compress_study.compressed("dict")
        assert compressed.ratio_percent() < 100.0
        assert len(compressed.dictionary) > 0

    def test_dictionary_sequences_within_bounds(self, compress_study):
        compressed = compress_study.compressed("dict")
        for seq in compressed.dictionary:
            assert MIN_SEQ <= len(seq) <= MAX_SEQ

    def test_table_bytes_accounts_storage(self, compress_study):
        compressed = compress_study.compressed("dict")
        bits = sum(len(s) * 40 + 2 for s in compressed.dictionary)
        assert compressed.table_bytes == (bits + 7) // 8

    def test_decode_requires_dictionary_image(self, image):
        base = BaselineScheme().compress(image)
        with pytest.raises(CompressionError):
            DictionaryScheme().decode_block(base, 0)

    def test_invalid_capacity(self):
        with pytest.raises(CompressionError):
            DictionaryScheme(max_entries=0)

    def test_small_dictionary_still_roundtrips(self, image):
        compressed = DictionaryScheme(max_entries=2).compress(image)
        compressed.verify()
        assert isinstance(compressed, DictionaryImage)

    def test_weaker_than_full_huffman(self, compress_study):
        """The documented trade-off: cheap decode, weaker compression."""
        dict_pct = compress_study.compressed("dict").ratio_percent()
        full_pct = compress_study.compressed("full").ratio_percent()
        assert full_pct < dict_pct


def _meta(kind, block_id=0, target=None, fallthrough=None):
    return BlockMeta(
        block_id=block_id, kind=kind, target=target,
        fallthrough=fallthrough, mop_count=1, op_count=1,
    )


class TestGshare:
    def test_static_kinds_delegate(self):
        unit = GshareUnit()
        entry = BlockPredictor()
        assert unit.predict(
            _meta(KIND_FALLTHROUGH, fallthrough=3), entry
        ) == 3
        assert unit.predict(_meta(KIND_JUMP, target=9), entry) == 9
        assert unit.predict(_meta(KIND_HALT), entry) is None

    def test_ret_uses_entry_last_target(self):
        unit = GshareUnit()
        entry = BlockPredictor()
        meta = _meta(KIND_RET)
        assert unit.predict(meta, entry) is None
        unit.update(meta, entry, 33)
        assert unit.predict(meta, entry) == 33

    def test_learns_alternating_pattern(self):
        """A strictly alternating branch defeats a 2-bit counter but is
        captured by one bit of global history."""
        unit = GshareUnit(history_bits=4)
        entry = BlockPredictor()
        meta = _meta(KIND_COND_BRANCH, block_id=5, target=1,
                     fallthrough=2)
        outcomes = [1, 2] * 40  # taken, not-taken, taken, ...
        correct_tail = 0
        for i, actual in enumerate(outcomes):
            prediction = unit.predict(meta, entry)
            if i >= 60 and prediction == actual:
                correct_tail += 1
            unit.update(meta, entry, actual)
        assert correct_tail >= 18  # near-perfect once history warms up

    def test_history_bounded(self):
        unit = GshareUnit(history_bits=3)
        meta = _meta(KIND_COND_BRANCH, target=1, fallthrough=2)
        entry = BlockPredictor()
        for _ in range(50):
            unit.update(meta, entry, 1)
        assert 0 <= unit.history < 8

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            GshareUnit(history_bits=0)

    def test_engine_accepts_gshare(self, compress_study):
        metrics = simulate_fetch(
            compress_study.compressed("base"),
            compress_study.run.block_trace,
            FetchConfig.for_scheme("base", scaled=True,
                                   predictor="gshare"),
        )
        assert metrics.pred_correct + metrics.pred_incorrect == \
            metrics.blocks_fetched

    def test_engine_rejects_unknown_predictor(self, compress_study):
        with pytest.raises(ConfigurationError):
            simulate_fetch(
                compress_study.compressed("base"),
                compress_study.run.block_trace,
                FetchConfig.for_scheme("base", scaled=True,
                                       predictor="oracle"),
            )


@given(
    history_bits=st.integers(1, 12),
    outcomes=st.lists(st.booleans(), max_size=60),
)
def test_gshare_counters_stay_in_range(history_bits, outcomes):
    unit = GshareUnit(history_bits=history_bits)
    entry = BlockPredictor()
    meta = _meta(KIND_COND_BRANCH, block_id=7, target=1, fallthrough=2)
    for taken in outcomes:
        unit.predict(meta, entry)
        unit.update(meta, entry, 1 if taken else 2)
    assert all(0 <= c <= 3 for c in unit.counters)
    assert 0 <= unit.history < (1 << history_bits)
