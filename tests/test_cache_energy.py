"""Tests for the fetch access-energy model."""

import pytest

from repro.fetch.config import FetchConfig
from repro.fetch.engine import FetchMetrics
from repro.power.cache_energy import (
    BUS_FLIP_ENERGY,
    FetchEnergy,
    L0_BYTES,
    ROM_LINE_ENERGY,
    fetch_energy,
    sram_access_energy,
)


class TestSramModel:
    def test_unit_normalization(self):
        assert sram_access_energy(1024) == pytest.approx(1.0)

    def test_sqrt_scaling(self):
        assert sram_access_energy(4096) == pytest.approx(2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            sram_access_energy(0)

    def test_l0_cheaper_than_any_l1(self):
        for scheme in ("base", "tailored", "compressed"):
            config = FetchConfig.for_scheme(scheme, scaled=True)
            assert sram_access_energy(L0_BYTES) < sram_access_energy(
                config.cache.capacity_bytes
            )


def _metrics(scheme, blocks, buffer_hits, hits, misses, lines, flips):
    m = FetchMetrics(scheme=scheme)
    m.blocks_fetched = blocks
    m.buffer_hits = buffer_hits
    m.cache_hits = hits
    m.cache_misses = misses
    m.lines_fetched = lines
    m.bus_bit_flips = flips
    return m


class TestFetchEnergy:
    def test_base_has_no_l0_component(self):
        config = FetchConfig.for_scheme("base", scaled=True)
        energy = fetch_energy(
            _metrics("base", 100, 0, 90, 10, 20, 500), config
        )
        assert energy.l0_energy == 0.0
        assert energy.rom_energy == 20 * ROM_LINE_ENERGY
        assert energy.bus_energy == pytest.approx(500 * BUS_FLIP_ENERGY)

    def test_compressed_probes_l0_every_block(self):
        config = FetchConfig.for_scheme("compressed", scaled=True)
        energy = fetch_energy(
            _metrics("compressed", 100, 60, 35, 5, 8, 100), config
        )
        assert energy.l0_energy == pytest.approx(
            100 * sram_access_energy(L0_BYTES)
        )
        # Only non-buffer-hit blocks reach the L1 array.
        assert energy.l1_energy == pytest.approx(
            40 * sram_access_energy(config.cache.capacity_bytes)
        )

    def test_total_is_sum(self):
        energy = FetchEnergy("x", 1.0, 2.0, 3.0, 4.0)
        assert energy.total == pytest.approx(10.0)

    def test_filter_effect_on_real_run(self, compress_study):
        base_cfg = FetchConfig.for_scheme("base", scaled=True)
        comp_cfg = FetchConfig.for_scheme("compressed", scaled=True)
        base = fetch_energy(
            compress_study.fetch_metrics("base"), base_cfg
        )
        comp = fetch_energy(
            compress_study.fetch_metrics("compressed"), comp_cfg
        )
        assert comp.total < base.total
