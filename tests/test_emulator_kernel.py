"""Differential tests for the threaded-code emulator kernel.

The kernel (`repro.emulator.kernel`) must be indistinguishable from the
interpretive reference (`repro.emulator.machine.run_image`) in every
observable: the block trace, all dynamic statistics, the opcode
histogram, final machine state, and the point and message of every
abort.  Fixed suite programs pin the real workloads; hypothesis
generates op/state combinations the suite never reaches.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator import Machine, emulate, run_image
from repro.emulator.kernel import _compile_mop, plan_for, run_image_kernel
from repro.emulator.machine import _execute_mop
from repro.errors import EmulationError
from repro.isa import MultiOp, Opcode, Operation
from repro.isa.registers import gpr, pred
from repro.programs.suite import BENCHMARK_NAMES, compile_benchmark
from repro.utils.arith import wrap32

_SCALE = 2


def _both(compiled, **kwargs):
    reference = run_image(
        compiled.image, compiled.module.globals, **kwargs
    )
    kernel = run_image_kernel(
        compiled.image, compiled.module.globals, **kwargs
    )
    return reference, kernel


# ------------------------------------------------------------- suite
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_suite_program_runs_identical(name):
    compiled = compile_benchmark(name, _SCALE)
    reference, kernel = _both(compiled)
    ref_fp = reference.fingerprint()
    ker_fp = kernel.fingerprint()
    for fld, expected in ref_fp.items():
        assert ker_fp[fld] == expected, f"{name}: {fld} diverged"
    # Counter equality is dict equality: a zero-count entry on one side
    # only would slip past fingerprint's name/count view.
    assert kernel.opcode_counts == reference.opcode_counts


def test_dataclass_fields_equal_modulo_machine():
    compiled = compile_benchmark("compress", _SCALE)
    reference, kernel = _both(compiled)
    assert kernel.block_trace == reference.block_trace
    assert kernel.block_trace.typecode == reference.block_trace.typecode
    assert kernel.dynamic_ops == reference.dynamic_ops
    assert kernel.dynamic_mops == reference.dynamic_mops
    assert kernel.executed_ops == reference.executed_ops
    assert kernel.ideal_ipc == reference.ideal_ipc
    assert (
        kernel.machine.state_digest() == reference.machine.state_digest()
    )


# ------------------------------------------------------------- aborts
@pytest.mark.parametrize("budget", [1, 7, 57, 331])
def test_runaway_aborts_at_identical_point(budget):
    compiled = compile_benchmark("compress", _SCALE)
    outcomes = []
    for runner in (run_image, run_image_kernel):
        machine = Machine()
        with pytest.raises(EmulationError) as err:
            runner(
                compiled.image,
                compiled.module.globals,
                max_mops=budget,
                machine=machine,
            )
        outcomes.append((str(err.value), machine.state_digest()))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == f"program exceeded {budget} dynamic MultiOps"


# --------------------------------------------------------- dispatcher
def test_emulate_dispatches_to_kernel_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    sentinel = object()
    monkeypatch.setattr(
        "repro.emulator.kernel.run_image_kernel",
        lambda *a, **k: sentinel,
    )
    compiled = compile_benchmark("compress", _SCALE)
    assert emulate(compiled.image, compiled.module.globals) is sentinel


def test_emulate_ref_mode_uses_reference(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "ref")
    sentinel = object()
    monkeypatch.setattr(
        "repro.emulator.machine.run_image", lambda *a, **k: sentinel
    )
    compiled = compile_benchmark("compress", _SCALE)
    assert emulate(compiled.image, compiled.module.globals) is sentinel


def test_plan_is_memoized_per_image():
    compiled = compile_benchmark("compress", _SCALE)
    assert plan_for(compiled.image) is plan_for(compiled.image)


# ------------------------------------------------- VLIW group compile
def _run_step(mop, machine):
    rt = [0, Counter()]
    return _compile_mop(mop)(machine, rt), rt


class TestCompiledMopSemantics:
    def test_swap_reads_before_writes(self):
        machine = Machine()
        machine.gpr[1], machine.gpr[2] = 11, 22
        mop = MultiOp.of([
            Operation(Opcode.MOV, dest=gpr(1), src1=gpr(2)),
            Operation(Opcode.MOV, dest=gpr(2), src1=gpr(1)),
        ])
        _run_step(mop, machine)
        assert (machine.gpr[1], machine.gpr[2]) == (22, 11)

    def test_two_control_transfers_rejected(self):
        machine = Machine()
        mop = MultiOp.of([
            Operation(Opcode.BR, target_block=1),
            Operation(Opcode.BR, target_block=2),
        ])
        with pytest.raises(EmulationError, match="two control"):
            _run_step(mop, machine)

    def test_predicated_second_control_is_fine(self):
        machine = Machine()  # p1 is False
        mop = MultiOp.of([
            Operation(Opcode.BR, target_block=1),
            Operation(Opcode.BR, target_block=2, predicate=pred(1)),
        ])
        control, rt = _run_step(mop, machine)
        assert control is not None and control[1] == 1
        assert rt == [0, Counter()]  # the nullified op counted nothing

    def test_store_applied_after_reads(self):
        machine = Machine()
        machine.gpr[1] = 256
        machine.gpr[2] = 5
        machine.store(256, 99, 2)
        mop = MultiOp.of([
            Operation(Opcode.LD, dest=gpr(3), src1=gpr(1)),
            Operation(Opcode.ST, src1=gpr(1), src2=gpr(2)),
        ])
        _run_step(mop, machine)
        assert machine.gpr[3] == 99
        assert machine.load_word(256) == 5

    def test_predicated_op_counts_dynamically(self):
        machine = Machine()
        machine.pr[2] = True
        machine.gpr[4] = 9
        mop = MultiOp.of([
            Operation(
                Opcode.MOV, dest=gpr(5), src1=gpr(4), predicate=pred(2)
            ),
        ])
        _, rt = _run_step(mop, machine)
        assert machine.gpr[5] == 9
        assert rt == [1, Counter({Opcode.MOV: 1})]


# --------------------------------------------------------- hypothesis
_BINARY_OPCODES = (
    Opcode.ADD, Opcode.SUB, Opcode.MPY, Opcode.AND, Opcode.OR,
    Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SRA, Opcode.MIN,
    Opcode.MAX, Opcode.DIV, Opcode.MOD, Opcode.CMPP_EQ, Opcode.CMPP_NE,
    Opcode.CMPP_LT, Opcode.CMPP_LE, Opcode.CMPP_GT, Opcode.CMPP_GE,
)
_UNARY_OPCODES = (Opcode.MOV, Opcode.ABS, Opcode.NOT)

_int32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
_reg_index = st.integers(min_value=0, max_value=31)


@st.composite
def _arith_cases(draw):
    opcode = draw(st.sampled_from(_BINARY_OPCODES + _UNARY_OPCODES))
    if opcode.is_compare:
        dest = pred(draw(_reg_index))
    else:
        dest = gpr(draw(_reg_index))
    src1 = gpr(draw(_reg_index))
    src2 = (
        gpr(draw(_reg_index)) if opcode in _BINARY_OPCODES else None
    )
    op = Operation(opcode, dest=dest, src1=src1, src2=src2)
    registers = draw(
        st.lists(_int32, min_size=32, max_size=32)
    )
    return op, registers


@given(_arith_cases())
@settings(max_examples=300, deadline=None)
def test_compiled_arithmetic_matches_execute_op(case):
    """A closure-compiled op and `_execute_op` (via `_execute_mop`)
    leave two machines in identical register state — or raise the
    identical error — from any 32-bit register file."""
    op, registers = case
    ref_machine, ker_machine = Machine(), Machine()
    ref_machine.gpr[:] = registers
    ker_machine.gpr[:] = registers
    assert all(wrap32(v) == v for v in registers)

    mop = MultiOp.of([op])
    outcomes = []
    for machine, execute in (
        (ref_machine, lambda m: _execute_mop(m, mop.ops, Counter())),
        (ker_machine, lambda m: _compile_mop(mop)(m, [0, Counter()])),
    ):
        try:
            execute(machine)
            outcomes.append(None)
        except EmulationError as exc:
            outcomes.append(str(exc))
    assert outcomes[0] == outcomes[1]
    assert ker_machine.gpr == ref_machine.gpr
    assert ker_machine.pr == ref_machine.pr
    assert ker_machine.state_digest() == ref_machine.state_digest()
