"""Tests for canonical Huffman coding and the length-limited variant."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.compression.bounded import length_limited_code_lengths
from repro.compression.huffman import (
    HuffmanCode,
    canonical_codes,
    code_lengths_from_frequencies,
)
from repro.errors import CompressionError
from repro.utils.bitstream import BitReader, BitWriter

freq_tables = st.dictionaries(
    keys=st.integers(min_value=0, max_value=10_000),
    values=st.integers(min_value=1, max_value=1_000_000),
    min_size=1,
    max_size=64,
)


class TestCodeLengths:
    def test_single_symbol_gets_one_bit(self):
        assert code_lengths_from_frequencies({7: 100}) == {7: 1}

    def test_two_symbols(self):
        assert code_lengths_from_frequencies({0: 1, 1: 9}) == {0: 1, 1: 1}

    def test_classic_example(self):
        # Frequencies 1,1,2,4 -> lengths 3,3,2,1.
        lengths = code_lengths_from_frequencies({0: 1, 1: 1, 2: 2, 3: 4})
        assert lengths == {0: 3, 1: 3, 2: 2, 3: 1}

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            code_lengths_from_frequencies({})

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(CompressionError):
            code_lengths_from_frequencies({0: 0})


class TestCanonicalCodes:
    def test_codes_ordered_by_length_then_symbol(self):
        codes = canonical_codes({0: 2, 1: 1, 2: 2})
        assert codes[1] == (0, 1)
        assert codes[0] == (0b10, 2)
        assert codes[2] == (0b11, 2)

    def test_kraft_violation_rejected(self):
        with pytest.raises(CompressionError):
            canonical_codes({0: 1, 1: 1, 2: 1})


def _is_prefix_free(codes):
    words = sorted(
        (format(code, f"0{length}b") for code, length in codes.values())
    )
    for a, b in zip(words, words[1:]):
        if b.startswith(a):
            return False
    return True


@given(freq_tables)
def test_huffman_is_prefix_free(freqs):
    code = HuffmanCode.from_frequencies(freqs)
    assert _is_prefix_free(code.codes)


@given(freq_tables)
def test_huffman_within_one_bit_of_entropy(freqs):
    """Average code length within [H, H+1) — Huffman's optimality bound."""
    code = HuffmanCode.from_frequencies(freqs)
    total = sum(freqs.values())
    entropy = -sum(
        (c / total) * math.log2(c / total) for c in freqs.values()
    )
    average = code.expected_length(freqs)
    assert average < entropy + 1 + 1e-9
    if len(freqs) > 1:
        assert average >= entropy - 1e-9


@given(freq_tables, st.lists(st.integers(0, 63), max_size=50))
def test_huffman_stream_roundtrip(freqs, picks):
    """Encoding a symbol stream and decoding it returns the stream."""
    code = HuffmanCode.from_frequencies(freqs)
    symbols = sorted(freqs)
    stream = [symbols[p % len(symbols)] for p in picks]
    writer = BitWriter()
    for s in stream:
        code.encode_symbol(s, writer)
    decoder = code.make_decoder()
    reader = BitReader.from_writer(writer)
    assert [decoder.decode_symbol(reader) for _ in stream] == stream


class TestHuffmanCode:
    def test_unknown_symbol_rejected(self):
        code = HuffmanCode.from_frequencies({1: 1, 2: 1})
        with pytest.raises(CompressionError):
            code.encode_symbol(99, BitWriter())

    def test_decoder_model_parameters(self):
        code = HuffmanCode.from_frequencies({0: 1, 1: 1, 2: 2, 3: 4})
        assert code.num_entries == 4
        assert code.max_code_length == 3
        assert code.entry_width(40) == 40

    def test_encoded_length(self):
        code = HuffmanCode.from_frequencies({0: 1, 1: 3})
        assert code.encoded_length([0, 1, 1]) == 3

    def test_expected_length_empty_rejected(self):
        code = HuffmanCode.from_frequencies({0: 1, 1: 3})
        with pytest.raises(CompressionError):
            code.expected_length({})


class TestBoundedHuffman:
    def test_respects_limit(self):
        # Fibonacci-like weights force long unbounded codes.
        freqs = {i: max(1, 2**i) for i in range(20)}
        unbounded = code_lengths_from_frequencies(freqs)
        assert max(unbounded.values()) > 8
        bounded = length_limited_code_lengths(freqs, 8)
        assert max(bounded.values()) <= 8

    def test_matches_unbounded_when_limit_loose(self):
        freqs = {0: 1, 1: 1, 2: 2, 3: 4}
        loose = length_limited_code_lengths(freqs, 16)
        assert loose == code_lengths_from_frequencies(freqs)

    def test_single_symbol(self):
        assert length_limited_code_lengths({5: 3}, 4) == {5: 1}

    def test_too_many_symbols_for_limit(self):
        with pytest.raises(CompressionError):
            length_limited_code_lengths({i: 1 for i in range(5)}, 2)

    def test_exact_capacity(self):
        lengths = length_limited_code_lengths({i: 1 for i in range(4)}, 2)
        assert all(v == 2 for v in lengths.values())

    def test_invalid_limit(self):
        with pytest.raises(CompressionError):
            length_limited_code_lengths({0: 1}, 0)


@given(freq_tables, st.integers(min_value=7, max_value=16))
def test_bounded_lengths_satisfy_kraft_and_limit(freqs, limit):
    lengths = length_limited_code_lengths(freqs, limit)
    assert set(lengths) == set(freqs)
    assert all(1 <= length <= limit for length in lengths.values())
    assert sum(2.0**-length for length in lengths.values()) <= 1 + 1e-9


@given(freq_tables)
def test_bounded_is_optimal_when_unconstrained(freqs):
    """With a loose limit, package-merge cost equals Huffman cost."""
    unbounded = code_lengths_from_frequencies(freqs)
    limit = max(unbounded.values())
    bounded = length_limited_code_lengths(freqs, limit)
    cost_a = sum(freqs[s] * unbounded[s] for s in freqs)
    cost_b = sum(freqs[s] * bounded[s] for s in freqs)
    assert cost_a == cost_b


@given(freq_tables, st.integers(min_value=7, max_value=14))
def test_bounded_code_feeds_canonical_coder(freqs, limit):
    code = HuffmanCode.from_frequencies(freqs, max_length=limit)
    assert code.max_code_length <= limit
    assert _is_prefix_free(code.codes)


class TestExactKraftCheck:
    def test_float_rounding_violation_is_caught(self):
        # sum(2**-l) = 1 + 2**-60, which rounds to exactly 1.0 in a
        # double — only the integer form of the check can reject it.
        lengths = {0: 1, 1: 2, 2: 3, 3: 3, 4: 60}
        assert sum(2.0**-length for length in lengths.values()) <= 1.0
        with pytest.raises(CompressionError, match="Kraft"):
            canonical_codes(lengths)

    def test_exactly_complete_code_accepted(self):
        codes = canonical_codes({0: 1, 1: 2, 2: 2})
        assert _is_prefix_free(codes)

    def test_deep_complete_code_accepted(self):
        # A 60-deep chain: {1, 2, ..., 59, 60, 60} is exactly complete.
        lengths = {i: i for i in range(1, 61)}
        lengths[61] = 60
        codes = canonical_codes(lengths)
        assert _is_prefix_free(codes)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(CompressionError, match="non-positive"):
            canonical_codes({0: 1, 1: 0})
        with pytest.raises(CompressionError, match="non-positive"):
            canonical_codes({0: -3})
